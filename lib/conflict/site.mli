(** Static branch sites of a lowered image, weighted by profile.

    A site is one branch {e instruction} of the laid-out code — exactly the
    addresses at which {!Ba_exec.Engine} emits events — described by its
    position relative to its procedure's base address.  Keeping offsets
    rather than absolute addresses lets conflict-aware placement re-score
    the same sites under shifted procedure bases without re-lowering.

    Weights come from the semantic profile, so they are exact for every
    site the interpreter visits, with one deliberate over-approximation:
    a call-continuation jump executes once per {e return} through its
    frame, which the profile bounds by the call block's visits. *)

type kind =
  | Cond of { taken_on : bool; w_true : int; w_false : int; taken_off : int }
      (** conditional branch; [w_true]/[w_false] are semantic outcome
          counts, the branch is architecturally taken when the outcome
          equals [taken_on], and [taken_off] is the taken target's address
          relative to the procedure base (so BT/FNT direction is decidable
          without the image: taken iff [taken_off <= offset]) *)
  | Jump of { cont : bool }
      (** unconditional: explicit or inserted ([cont = false]), or a
          call-continuation jump ([cont = true]) whose weight is the
          over-approximate once-per-return count *)
  | Switch of { live_targets : int }
      (** [live_targets]: distinct target addresses with nonzero profile
          count — the floor on BTB target mispredictions *)
  | Call
  | Vcall
  | Ret

type t = {
  proc : Ba_ir.Term.proc_id;
  block : Ba_ir.Term.block_id;  (** originating semantic block *)
  offset : int;  (** branch pc relative to the procedure base *)
  kind : kind;
  weight : int;  (** times the branch instruction executes (see above) *)
  taken_weight : int;
      (** times it resolves taken — the BTB-allocating weight: full weight
          for unconditional transfers, the taken-leg count for
          conditionals, zero for returns (the RAS owns those) *)
}

type region = {
  r_proc : Ba_ir.Term.proc_id;
  r_offset : int;  (** first fetched address relative to the procedure base *)
  r_size : int;
  r_weight : int;
}
(** One fetched address range, mirroring the interpreter's [on_block]
    callbacks (straight-line body plus the first terminator instruction;
    inserted and continuation jumps fetch their own 1-instruction range). *)

type summary = {
  sites : t list;  (** in (procedure, offset) order *)
  regions : region list;  (** in (procedure, offset) order *)
  ras_bound : int option;
      (** longest call chain from [main] in the static call graph — an
          upper bound on return-stack depth; [None] when the call graph
          has a reachable cycle (recursion, statically unbounded) *)
  call_blocks : int;  (** call / vcall blocks in the program *)
}

val extract : profile:Ba_cfg.Profile.t -> Ba_layout.Image.t -> summary
(** Sites and fetch regions of every procedure of the image, weighted by
    [profile].  Zero-weight sites and regions are kept in the summary;
    the analysis ignores them when counting occupancy and conflicts (a
    never-executed branch cannot interfere), but they document the full
    static map. *)
