open Ba_ir
open Ba_layout

type result = {
  image : Image.t;
  decisions : Decision.t array;
  pads : int array;
  before : int;
  after : int;
  swaps : int;
}

let objective_of ~suite ~profile image =
  let summary = Site.extract ~profile image in
  Analyze.objective
    (Analyze.of_summary ~suite ~bases:image.Image.bases summary)

let proc_branch_cost ~arch ~profile program decision p =
  let proc = Program.proc program p in
  let cond_counts b = Ba_cfg.Profile.cond_counts profile p b in
  let linear = Lower.lower ~cond_counts proc decision in
  Ba_core.Layout_cost.branch_cost ~arch
    ~visits:(fun b -> Ba_cfg.Profile.visits profile p b)
    ~cond_counts linear

(* One greedy pass of adjacent swaps.  A swap must keep the procedure's own
   exact branch cost from rising (the alignment's win is not negotiable)
   and must strictly lower the global conflict objective.

   With [delta] (the default) the branch-cost guard is priced by
   [Ba_delta.Model] — one cached lowering per procedure, each swap
   re-priced over its three-position window — instead of two full
   lowerings per candidate.  [Model.total]/[Model.preview] are bit-equal
   to [proc_branch_cost], so the guard accepts exactly the same swaps
   either way (the equality gate in [test_delta.ml] pins this). *)
let swap_pass ?(delta = true) ~suite ~arch ~build ~profile program decisions =
  let n = Program.n_procs program in
  let swaps = ref 0 in
  let current_obj =
    ref (objective_of ~suite ~profile (build ?pads:None decisions))
  in
  for p = 0 to n - 1 do
    let len = Proc.n_blocks (Program.proc program p) in
    let model =
      if delta && len > 2 then
        Some
          (Ba_delta.Model.create ~arch
             ~visits:(fun b -> Ba_cfg.Profile.visits profile p b)
             ~cond_counts:(fun b -> Ba_cfg.Profile.cond_counts profile p b)
             (Program.proc program p) decisions.(p))
      else None
    in
    for pos = 1 to len - 2 do
      let cost_ok =
        match model with
        | Some m ->
          Ba_delta.Model.preview m (Ba_delta.Move.Swap pos)
          <= Ba_delta.Model.total m +. 1e-6
        | None ->
          let candidate = Decision.swap_positions decisions.(p) pos (pos + 1) in
          proc_branch_cost ~arch ~profile program candidate p
          <= proc_branch_cost ~arch ~profile program decisions.(p) p +. 1e-6
      in
      if cost_ok then begin
        let saved = decisions.(p) in
        decisions.(p) <- Decision.swap_positions decisions.(p) pos (pos + 1);
        let obj = objective_of ~suite ~profile (build ?pads:None decisions) in
        if obj < !current_obj then begin
          current_obj := obj;
          incr swaps;
          Option.iter (fun m -> Ba_delta.Model.commit m (Ba_delta.Move.Swap pos)) model
        end
        else decisions.(p) <- saved
      end
    done
  done;
  (!current_obj, !swaps)

(* Greedy pad sweep: procedures in order, each pad chosen to minimise the
   objective given the pads already fixed; ties keep the smaller pad, so a
   layout with nothing to gain keeps all-zero pads.

   The classic layout shifts a procedure's whole body with its base, so
   the site summary is extracted once and only the bases recomputed per
   candidate pad.  A stitched image has no such shortcut — a pad moves the
   hot region, the cold section, and everything placed after either — so
   the interproc path rebuilds the image per candidate (programs are small
   enough that the exact sweep stays cheap). *)
let pad_sweep ~suite ~max_pad ~interproc ~build ~profile program decisions =
  let n = Program.n_procs program in
  let pads = Array.make n 0 in
  let objective =
    if interproc then fun pads ->
      objective_of ~suite ~profile (build ?pads:(Some pads) decisions)
    else begin
      let image = build ?pads:None decisions in
      let summary = Site.extract ~profile image in
      let sizes =
        Array.map (fun linear -> Linear.code_size linear) image.Image.linears
      in
      let bases_for pads =
        let bases = Array.make n 0 in
        let addr = ref 0 in
        for p = 0 to n - 1 do
          addr := !addr + pads.(p);
          bases.(p) <- !addr;
          addr := !addr + sizes.(p)
        done;
        bases
      in
      fun pads ->
        Analyze.objective
          (Analyze.of_summary ~suite ~bases:(bases_for pads) summary)
    end
  in
  for p = 0 to n - 1 do
    let best_pad = ref 0 and best_obj = ref (objective pads) in
    for pad = 1 to max_pad do
      pads.(p) <- pad;
      let obj = objective pads in
      if obj < !best_obj then begin
        best_obj := obj;
        best_pad := pad
      end
    done;
    pads.(p) <- !best_pad
  done;
  pads

let improve ?(suite = Structure.placement_suite)
    ?(arch = Ba_core.Cost_model.Btfnt) ?(max_pad = 32) ?delta
    ?(interproc = false) ~profile program decisions =
  Ba_obs.Span.with_ "place" @@ fun () ->
  if Array.length decisions <> Program.n_procs program then
    invalid_arg "Place.improve: one decision per procedure required";
  let decisions = Array.copy decisions in
  let build ?pads decisions =
    if interproc then
      (Image.build_interproc ?pads ~profile program decisions).Image.image
    else Image.build ?pads ~profile program decisions
  in
  let before = objective_of ~suite ~profile (build ?pads:None decisions) in
  let _, swaps =
    swap_pass ?delta ~suite ~arch ~build ~profile program decisions
  in
  let pads = pad_sweep ~suite ~max_pad ~interproc ~build ~profile program decisions in
  let image = build ~pads decisions in
  let after = objective_of ~suite ~profile image in
  { image; decisions; pads; before; after; swaps }
