(** Conflict findings as lint diagnostics.

    Every rule is {!Ba_analysis.Diagnostic.Info}: a conflict is a
    performance fact about a layout, not a correctness defect.  To keep
    the lint signal readable, indexed-structure rules fire only on
    conflicts whose weight is at least {!hot_fraction} of the structure's
    total weight ("hot" conflicts); the [analyze] subcommand reports the
    full list.

    Rules:
    - [conflict/pht-hot-pair] — a PHT counter or local-history register
      shared by hot conditionals (destructive when their majority
      directions oppose);
    - [conflict/btb-set-pressure] — a BTB set whose hot allocating sites
      exceed its ways;
    - [conflict/ras-depth] — the static call-chain bound exceeds the
      return stack depth, or recursion makes it unbounded;
    - [conflict/icache-hot-line] — an instruction-cache set thrashed by
      more hot lines than ways;
    - [conflict/alpha-line-sharing] — an Alpha history line shared by
      conditionals from distinct cache lines, which refill over each
      other's history bits. *)

val hot_fraction : float
(** Weight fraction (of the structure's total) a conflict must reach to
    produce a diagnostic: 0.05. *)

val check :
  ?suite:Structure.t list ->
  profile:Ba_cfg.Profile.t ->
  Ba_layout.Image.t ->
  Ba_analysis.Diagnostic.t list
(** Analyze the image and convert hot conflicts to diagnostics, in
    {!Ba_analysis.Diagnostic.sort} order. *)

val of_reports :
  Ba_ir.Program.t -> Analyze.report list -> Ba_analysis.Diagnostic.t list
(** The conversion alone, for callers that already ran {!Analyze}. *)
