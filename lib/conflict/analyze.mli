(** Static predictor-interference analysis.

    For each {!Structure} this evaluates the structure's pure indexing
    function (from [Ba_predict]) over the static address map of a lowered
    image, weights every branch site by the profile, and reports which
    predictor entries end up shared — before any simulation runs.

    Interference definitions, per entry (index):

    - {b occupancy} — distinct indices holding at least one weighted item
      (a conditional site for direction tables, an allocating site for the
      BTB, a fetched cache line for the caches);
    - {b conflict} — an index holding more items than it has ways; its
      {e excess weight} is the item weight beyond the [assoc] heaviest
      items, a lower bound on the interfering accesses;
    - {b destructive interference} — for direction-predicting tables, an
      index shared by sites of opposing profile-majority direction; its
      weight is the lighter side's total (the accesses the heavier side
      can disturb).

    The return-address stack is not an indexed structure; its report is a
    static call-chain depth bound checked against the stack depth.

    The whole analysis is pure arithmetic over the address map, so it is
    deterministic by construction and runs in one pass per structure. *)

type occupant = {
  o_key : int;  (** branch pc, or cache-line number for the caches *)
  o_weight : int;
  o_bias : bool option;
      (** profile-majority predicted direction (direction tables only) *)
  o_site : (Ba_ir.Term.proc_id * Ba_ir.Term.block_id) option;
      (** heaviest contributing semantic site, when one exists *)
}

type conflict = {
  index : int;
  occupants : occupant list;  (** by decreasing weight, then key *)
  excess_weight : int;
  opposing : bool;
  opposing_weight : int;  (** the lighter direction's weight, if opposing *)
}

type map_report = {
  capacity : int;  (** number of sets (indices) *)
  assoc : int;
  items : int;  (** weighted items considered *)
  total_weight : int;
  used : int;
  conflicts : conflict list;  (** by decreasing excess weight, then index *)
  conflict_weight : int;  (** sum of excess weights *)
  destructive_pairs : int;  (** conflicts with opposing biases *)
  destructive_weight : int;
}

type ras_report = {
  depth : int;
  call_blocks : int;
  static_bound : int option;  (** [None] = recursion, unbounded *)
  overflow_possible : bool;
}

type body = Map of map_report | Stack of ras_report
type report = { structure : Structure.t; body : body }

val of_summary :
  suite:Structure.t list -> bases:int array -> Site.summary -> report list
(** Score an extracted site summary under the given procedure base
    addresses — the placement search calls this directly to re-score one
    lowering under many paddings without rebuilding images. *)

val analyze :
  ?suite:Structure.t list ->
  profile:Ba_cfg.Profile.t ->
  Ba_layout.Image.t ->
  report list
(** Extract sites and score them, under the ["analyze"] span.  [suite]
    defaults to {!Structure.default_suite}. *)

val objective : report list -> int
(** The placement objective: total conflict plus destructive weight over
    the map reports (the RAS is layout-invariant and contributes
    nothing). *)

val to_json : report list -> Ba_util.Json.t
val render : report list -> string
(** Ascii summary table, one row per structure. *)
