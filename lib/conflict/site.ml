open Ba_ir
open Ba_layout

type kind =
  | Cond of { taken_on : bool; w_true : int; w_false : int; taken_off : int }
  | Jump of { cont : bool }
  | Switch of { live_targets : int }
  | Call
  | Vcall
  | Ret

type t = {
  proc : Term.proc_id;
  block : Term.block_id;
  offset : int;
  kind : kind;
  weight : int;
  taken_weight : int;
}

type region = {
  r_proc : Term.proc_id;
  r_offset : int;
  r_size : int;
  r_weight : int;
}

type summary = {
  sites : t list;
  regions : region list;
  ras_bound : int option;
  call_blocks : int;
}

(* Longest call chain from [main], in call edges; [None] on a reachable
   cycle.  Vcall edges count like direct calls: the analysis is static, so
   every possible callee extends the chain. *)
let call_depth_bound (program : Program.t) =
  let n = Program.n_procs program in
  let callees = Array.make n [] in
  for p = 0 to n - 1 do
    let acc = ref [] in
    Array.iter
      (fun (b : Block.t) ->
        match b.Block.term with
        | Term.Call { callee; _ } -> acc := callee :: !acc
        | Term.Vcall { callees = cs; _ } ->
          Array.iter (fun (c, _) -> acc := c :: !acc) cs
        | _ -> ())
      (Program.proc program p).Proc.blocks;
    callees.(p) <- List.sort_uniq compare !acc
  done;
  (* 0 = unvisited, 1 = on the current chain, 2 = done *)
  let color = Array.make n 0 in
  let depth = Array.make n 0 in
  let exception Cycle in
  let rec visit p =
    match color.(p) with
    | 1 -> raise Cycle
    | 2 -> depth.(p)
    | _ ->
      color.(p) <- 1;
      let d =
        List.fold_left (fun acc c -> max acc (1 + visit c)) 0 callees.(p)
      in
      color.(p) <- 2;
      depth.(p) <- d;
      d
  in
  match visit program.Program.main with
  | d -> Some d
  | exception Cycle -> None

let count_call_blocks (program : Program.t) =
  let n = ref 0 in
  Program.iter_blocks program (fun _ _ b ->
      match b.Block.term with
      | Term.Call _ | Term.Vcall _ -> incr n
      | _ -> ());
  !n

let extract ~profile (image : Image.t) =
  let program = image.Image.program in
  let sites = ref [] and regions = ref [] in
  let site s = sites := s :: !sites in
  let region r = regions := r :: !regions in
  Array.iteri
    (fun p (linear : Linear.t) ->
      let base = image.Image.bases.(p) in
      Array.iter
        (fun (lb : Linear.lblock) ->
          let b = lb.Linear.src in
          let visits = Ba_cfg.Profile.visits profile p b in
          let pc = Linear.branch_pc lb in
          let off = pc - base in
          (* The fetched range of one visit: straight-line body plus the
             first terminator instruction, exactly as the interpreter
             reports it to [on_block]. *)
          let fetched =
            match lb.Linear.term with
            | Linear.Lnone -> lb.Linear.insns
            | _ -> lb.Linear.insns + 1
          in
          if fetched > 0 then
            region
              {
                r_proc = p;
                r_offset = lb.Linear.addr - base;
                r_size = fetched;
                r_weight = visits;
              };
          let uncond_site ~offset ~weight kind =
            site
              { proc = p; block = b; offset; kind; weight; taken_weight = weight }
          in
          match lb.Linear.term with
          | Linear.Lnone | Linear.Lhalt -> ()
          | Linear.Ljump _ ->
            uncond_site ~offset:off ~weight:visits (Jump { cont = false })
          | Linear.Lcond { taken_pos; taken_on; inserted_jump } ->
            let w_true, w_false = Ba_cfg.Profile.cond_counts profile p b in
            let w_taken = if taken_on then w_true else w_false in
            let taken_off =
              linear.Linear.blocks.(taken_pos).Linear.addr - base
            in
            site
              {
                proc = p;
                block = b;
                offset = off;
                kind = Cond { taken_on; w_true; w_false; taken_off };
                weight = w_true + w_false;
                taken_weight = w_taken;
              };
            (match inserted_jump with
            | None -> ()
            | Some _ ->
              let w_jump = w_true + w_false - w_taken in
              uncond_site ~offset:(off + 1) ~weight:w_jump (Jump { cont = false });
              region
                {
                  r_proc = p;
                  r_offset = off + 1;
                  r_size = 1;
                  r_weight = w_jump;
                })
          | Linear.Lswitch { positions; _ } ->
            (* Distinct target addresses the trace actually exercises: a
               BTB can serve a one-hot switch perfectly after its first
               visit, but every fresh target address is a guaranteed
               mispredict. *)
            let counts = Ba_cfg.Profile.switch_counts profile p b in
            let live = Hashtbl.create 4 in
            Array.iteri
              (fun case count ->
                if count > 0 then Hashtbl.replace live positions.(case) ())
              counts;
            uncond_site ~offset:off ~weight:visits
              (Switch { live_targets = Hashtbl.length live })
          | Linear.Lcall { cont; _ } | Linear.Lvcall { cont; _ } ->
            let kind =
              match lb.Linear.term with Linear.Lcall _ -> Call | _ -> Vcall
            in
            uncond_site ~offset:off ~weight:visits kind;
            (match cont with
            | Linear.Fall -> ()
            | Linear.Jump_to _ ->
              (* Executes once per return through this frame; the call
                 count is a sound upper bound (a frame cut short by the
                 step budget or a [Halt] never returns). *)
              uncond_site ~offset:(off + 1) ~weight:visits (Jump { cont = true });
              region
                { r_proc = p; r_offset = off + 1; r_size = 1; r_weight = visits })
          | Linear.Lret ->
            site
              {
                proc = p;
                block = b;
                offset = off;
                kind = Ret;
                weight = visits;
                taken_weight = 0;
              })
        linear.Linear.blocks)
    image.Image.linears;
  let by_place a b = compare (a.proc, a.offset) (b.proc, b.offset) in
  let by_place_r a b = compare (a.r_proc, a.r_offset) (b.r_proc, b.r_offset) in
  {
    sites = List.sort by_place (List.rev !sites);
    regions = List.sort by_place_r (List.rev !regions);
    ras_bound = call_depth_bound program;
    call_blocks = count_call_blocks program;
  }
