open Ba_analysis

let hot_fraction = 0.05

let rule_of = function
  | Structure.Pht_direct _ | Structure.Pht_gshare _ | Structure.Two_level_local _
    ->
    "conflict/pht-hot-pair"
  | Structure.Btb _ -> "conflict/btb-set-pressure"
  | Structure.Icache _ -> "conflict/icache-hot-line"
  | Structure.Alpha _ -> "conflict/alpha-line-sharing"
  | Structure.Ras _ -> "conflict/ras-depth"

let item_noun = function
  | Structure.Btb _ -> "allocating branch sites"
  | Structure.Icache _ -> "hot lines"
  | Structure.Alpha _ -> "conditional-bearing lines"
  | _ -> "hot conditionals"

let loc_of program (c : Analyze.conflict) =
  (* Occupants are weight-sorted; anchor at the heaviest one that maps to
     a semantic block. *)
  match
    List.find_opt (fun (o : Analyze.occupant) -> o.Analyze.o_site <> None)
      c.Analyze.occupants
  with
  | Some { Analyze.o_site = Some (proc, block); _ } ->
    Diagnostic.Block
      { proc; proc_name = (Ba_ir.Program.proc program proc).Ba_ir.Proc.name; block }
  | _ -> Diagnostic.Program

let keys_of (c : Analyze.conflict) =
  String.concat ", "
    (List.map
       (fun (o : Analyze.occupant) -> string_of_int o.Analyze.o_key)
       c.Analyze.occupants)

let map_diags program structure (m : Analyze.map_report) =
  let threshold =
    int_of_float (ceil (hot_fraction *. float_of_int m.Analyze.total_weight))
  in
  let threshold = max threshold 1 in
  List.filter_map
    (fun (c : Analyze.conflict) ->
      let heat = max c.Analyze.excess_weight c.Analyze.opposing_weight in
      if heat < threshold then None
      else
        Some
          (Diagnostic.make Diagnostic.Info ~rule:(rule_of structure)
             ~loc:(loc_of program c)
             "%s: index %d holds %d %s (%s %s); excess weight %d of %d total%s"
             (Structure.name structure) c.Analyze.index
             (List.length c.Analyze.occupants)
             (item_noun structure)
             (match structure with
             | Structure.Icache _ | Structure.Alpha _ -> "lines"
             | _ -> "pcs")
             (keys_of c) c.Analyze.excess_weight m.Analyze.total_weight
             (if c.Analyze.opposing then
                Printf.sprintf ", opposing directions (weight %d)"
                  c.Analyze.opposing_weight
              else "")))
    m.Analyze.conflicts

let ras_diags structure (s : Analyze.ras_report) =
  if not s.Analyze.overflow_possible then []
  else
    [
      (match s.Analyze.static_bound with
      | None ->
        Diagnostic.make Diagnostic.Info ~rule:(rule_of structure)
          ~loc:Diagnostic.Program
          "%s: static call depth is unbounded (recursive call graph); the \
           %d-entry return stack may overflow"
          (Structure.name structure) s.Analyze.depth
      | Some b ->
        Diagnostic.make Diagnostic.Info ~rule:(rule_of structure)
          ~loc:Diagnostic.Program
          "%s: static call depth %d exceeds the %d-entry return stack"
          (Structure.name structure) b s.Analyze.depth);
    ]

let of_reports program reports =
  Diagnostic.sort
    (List.concat_map
       (fun (r : Analyze.report) ->
         match r.Analyze.body with
         | Analyze.Map m -> map_diags program r.Analyze.structure m
         | Analyze.Stack s -> ras_diags r.Analyze.structure s)
       reports)

let check ?suite ~profile image =
  of_reports image.Ba_layout.Image.program (Analyze.analyze ?suite ~profile image)
