open Ba_predict

type occupant = {
  o_key : int;
  o_weight : int;
  o_bias : bool option;
  o_site : (Ba_ir.Term.proc_id * Ba_ir.Term.block_id) option;
}

type conflict = {
  index : int;
  occupants : occupant list;
  excess_weight : int;
  opposing : bool;
  opposing_weight : int;
}

type map_report = {
  capacity : int;
  assoc : int;
  items : int;
  total_weight : int;
  used : int;
  conflicts : conflict list;
  conflict_weight : int;
  destructive_pairs : int;
  destructive_weight : int;
}

type ras_report = {
  depth : int;
  call_blocks : int;
  static_bound : int option;
  overflow_possible : bool;
}

type body = Map of map_report | Stack of ras_report
type report = { structure : Structure.t; body : body }

(* Group weighted items by index and fold each over-occupied (or
   direction-opposed) index into a conflict record. *)
let build_map ~capacity ~assoc ~index items =
  let by_index = Hashtbl.create 64 in
  let items = List.filter (fun o -> o.o_weight > 0) items in
  List.iter
    (fun o ->
      let i = index o in
      Hashtbl.replace by_index i (o :: Option.value ~default:[] (Hashtbl.find_opt by_index i)))
    items;
  let indices =
    List.sort compare (Hashtbl.fold (fun i _ acc -> i :: acc) by_index [])
  in
  let conflicts = ref [] in
  List.iter
    (fun i ->
      let occupants =
        List.sort
          (fun a b ->
            match compare b.o_weight a.o_weight with
            | 0 -> compare a.o_key b.o_key
            | c -> c)
          (Hashtbl.find by_index i)
      in
      let total = List.fold_left (fun acc o -> acc + o.o_weight) 0 occupants in
      let rec top k = function
        | o :: rest when k > 0 -> o.o_weight + top (k - 1) rest
        | _ -> 0
      in
      let excess = total - top assoc occupants in
      let side b =
        List.fold_left
          (fun acc o -> if o.o_bias = Some b then acc + o.o_weight else acc)
          0 occupants
      in
      let taken_w = side true and fall_w = side false in
      let opposing = taken_w > 0 && fall_w > 0 in
      let opposing_weight = if opposing then min taken_w fall_w else 0 in
      if excess > 0 || opposing then
        conflicts :=
          { index = i; occupants; excess_weight = excess; opposing; opposing_weight }
          :: !conflicts)
    indices;
  let conflicts =
    List.sort
      (fun a b ->
        match compare b.excess_weight a.excess_weight with
        | 0 -> compare a.index b.index
        | c -> c)
      (List.rev !conflicts)
  in
  {
    capacity;
    assoc;
    items = List.length items;
    total_weight = List.fold_left (fun acc o -> acc + o.o_weight) 0 items;
    used = List.length indices;
    conflicts;
    conflict_weight = List.fold_left (fun acc c -> acc + c.excess_weight) 0 conflicts;
    destructive_pairs =
      List.fold_left (fun acc c -> if c.opposing then acc + 1 else acc) 0 conflicts;
    destructive_weight =
      List.fold_left (fun acc c -> acc + c.opposing_weight) 0 conflicts;
  }

(* Conditional sites as direction-table items: the bias is the
   profile-majority architectural direction (taken at least as often as
   not), matching what a 2-bit counter trains towards. *)
let cond_items ~bases (summary : Site.summary) =
  List.filter_map
    (fun (s : Site.t) ->
      match s.Site.kind with
      | Site.Cond _ ->
        Some
          {
            o_key = bases.(s.Site.proc) + s.Site.offset;
            o_weight = s.Site.weight;
            o_bias = Some (2 * s.Site.taken_weight >= s.Site.weight);
            o_site = Some (s.Site.proc, s.Site.block);
          }
      | _ -> None)
    summary.Site.sites

let btb_items ~bases (summary : Site.summary) =
  List.filter_map
    (fun (s : Site.t) ->
      if s.Site.taken_weight > 0 then
        Some
          {
            o_key = bases.(s.Site.proc) + s.Site.offset;
            o_weight = s.Site.taken_weight;
            o_bias = None;
            o_site = Some (s.Site.proc, s.Site.block);
          }
      else None)
    summary.Site.sites

(* Cache lines fetched by the weighted regions, with per-line weights. *)
let line_items ~bases ~insns_per_line (summary : Site.summary) =
  let by_line = Hashtbl.create 64 in
  List.iter
    (fun (r : Site.region) ->
      if r.Site.r_weight > 0 && r.Site.r_size > 0 then begin
        let addr = bases.(r.Site.r_proc) + r.Site.r_offset in
        let first = Icache.line_of ~insns_per_line ~addr in
        let last = Icache.line_of ~insns_per_line ~addr:(addr + r.Site.r_size - 1) in
        for line = first to last do
          let w = Option.value ~default:0 (Hashtbl.find_opt by_line line) in
          Hashtbl.replace by_line line (w + r.Site.r_weight)
        done
      end)
    summary.Site.regions;
  List.sort
    (fun a b -> compare a.o_key b.o_key)
    (Hashtbl.fold
       (fun line w acc ->
         { o_key = line; o_weight = w; o_bias = None; o_site = None } :: acc)
       by_line [])

(* Alpha history lines: only conditional updates write history bits, so a
   line's weight is its conditionals' execution weight; the heaviest
   conditional locates the line for diagnostics. *)
let alpha_items ~bases ~insns_per_line (summary : Site.summary) =
  let by_line = Hashtbl.create 64 in
  List.iter
    (fun (s : Site.t) ->
      match s.Site.kind with
      | Site.Cond _ when s.Site.weight > 0 ->
        let pc = bases.(s.Site.proc) + s.Site.offset in
        let line = Alpha_bits.line_no_of ~insns_per_line ~pc in
        let w, best =
          Option.value ~default:(0, None) (Hashtbl.find_opt by_line line)
        in
        let best =
          match best with
          | Some (bw, _) when bw >= s.Site.weight -> best
          | _ -> Some (s.Site.weight, (s.Site.proc, s.Site.block))
        in
        Hashtbl.replace by_line line (w + s.Site.weight, best)
      | _ -> ())
    summary.Site.sites;
  List.sort
    (fun a b -> compare a.o_key b.o_key)
    (Hashtbl.fold
       (fun line (w, best) acc ->
         {
           o_key = line;
           o_weight = w;
           o_bias = None;
           o_site = Option.map snd best;
         }
         :: acc)
       by_line [])

let report_of ~bases summary structure =
  let body =
    match structure with
    | Structure.Pht_direct { entries } ->
      Map
        (build_map ~capacity:entries ~assoc:1
           ~index:(fun o -> Pht.direct_index ~entries ~pc:o.o_key)
           (cond_items ~bases summary))
    | Structure.Pht_gshare { entries; history_bits = _ } ->
      (* Zero-history projection: a heuristic view, see {!Structure}. *)
      Map
        (build_map ~capacity:entries ~assoc:1
           ~index:(fun o -> Pht.gshare_index ~entries ~history:0 ~pc:o.o_key)
           (cond_items ~bases summary))
    | Structure.Two_level_local { branch_entries } ->
      Map
        (build_map ~capacity:branch_entries ~assoc:1
           ~index:(fun o -> Two_level.local_index ~branch_entries ~pc:o.o_key)
           (cond_items ~bases summary))
    | Structure.Btb { entries; assoc } ->
      Map
        (build_map ~capacity:(entries / assoc) ~assoc
           ~index:(fun o -> Btb.set_index ~entries ~assoc ~pc:o.o_key)
           (btb_items ~bases summary))
    | Structure.Icache { lines; insns_per_line; assoc } ->
      Map
        (build_map ~capacity:(lines / assoc) ~assoc
           ~index:(fun o -> Icache.set_index ~lines ~assoc ~line:o.o_key)
           (line_items ~bases ~insns_per_line summary))
    | Structure.Alpha { lines; insns_per_line } ->
      Map
        (build_map ~capacity:lines ~assoc:1
           ~index:(fun o -> Alpha_bits.line_index ~lines ~line_no:o.o_key)
           (alpha_items ~bases ~insns_per_line summary))
    | Structure.Ras { depth } ->
      let bound = summary.Site.ras_bound in
      Stack
        {
          depth;
          call_blocks = summary.Site.call_blocks;
          static_bound = bound;
          overflow_possible =
            (match bound with None -> true | Some b -> b > depth);
        }
  in
  { structure; body }

let of_summary ~suite ~bases summary =
  List.map (report_of ~bases summary) suite

let analyze ?(suite = Structure.default_suite) ~profile image =
  Ba_obs.Span.with_ "analyze" @@ fun () ->
  let summary = Site.extract ~profile image in
  of_summary ~suite ~bases:image.Ba_layout.Image.bases summary

let objective reports =
  List.fold_left
    (fun acc r ->
      match r.body with
      | Map m -> acc + m.conflict_weight + m.destructive_weight
      | Stack _ -> acc)
    0 reports

let occupant_to_json o =
  let open Ba_util.Json in
  Obj
    (( [ ("key", Int o.o_key); ("weight", Int o.o_weight) ]
     @ (match o.o_bias with
       | None -> []
       | Some b -> [ ("bias_taken", Bool b) ])
     @
     match o.o_site with
     | None -> []
     | Some (p, b) -> [ ("proc", Int p); ("block", Int b) ] ))

let conflict_to_json c =
  let open Ba_util.Json in
  Obj
    [
      ("index", Int c.index);
      ("excess_weight", Int c.excess_weight);
      ("opposing", Bool c.opposing);
      ("opposing_weight", Int c.opposing_weight);
      ("occupants", List (List.map occupant_to_json c.occupants));
    ]

let report_to_json r =
  let open Ba_util.Json in
  let common = [ ("structure", String (Structure.name r.structure)) ] in
  match r.body with
  | Map m ->
    Obj
      (common
      @ [
          ("kind", String "map");
          ("capacity", Int m.capacity);
          ("assoc", Int m.assoc);
          ("items", Int m.items);
          ("total_weight", Int m.total_weight);
          ("used", Int m.used);
          ("conflict_sets", Int (List.length m.conflicts));
          ("conflict_weight", Int m.conflict_weight);
          ("destructive_pairs", Int m.destructive_pairs);
          ("destructive_weight", Int m.destructive_weight);
          ("conflicts", List (List.map conflict_to_json m.conflicts));
        ])
  | Stack s ->
    Obj
      (common
      @ [
          ("kind", String "stack");
          ("depth", Int s.depth);
          ("call_blocks", Int s.call_blocks);
          ( "static_bound",
            match s.static_bound with None -> Null | Some b -> Int b );
          ("overflow_possible", Bool s.overflow_possible);
        ])

let to_json reports = Ba_util.Json.List (List.map report_to_json reports)

let render reports =
  let open Ba_util.Ascii_table in
  let columns =
    [
      column ~align:Left "structure";
      column "geometry";
      column "items";
      column "used";
      column "conflicts";
      column "excess-wt";
      column "opposing";
      column "opposing-wt";
      column ~align:Left "note";
    ]
  in
  let rows =
    List.map
      (fun r ->
        match r.body with
        | Map m ->
          [
            Structure.name r.structure;
            Printf.sprintf "%dx%d" m.capacity m.assoc;
            int_cell m.items;
            int_cell m.used;
            int_cell (List.length m.conflicts);
            int_cell m.conflict_weight;
            int_cell m.destructive_pairs;
            int_cell m.destructive_weight;
            (match r.structure with
            | Structure.Pht_gshare _ -> "zero-history projection"
            | _ -> "");
          ]
        | Stack s ->
          [
            Structure.name r.structure;
            Printf.sprintf "depth %d" s.depth;
            int_cell s.call_blocks;
            "-";
            "-";
            "-";
            "-";
            "-";
            (match s.static_bound with
            | None -> "unbounded (recursive call graph)"
            | Some b ->
              Printf.sprintf "static call depth %d %s depth %d" b
                (if b > s.depth then "exceeds" else "within")
                s.depth);
          ])
      reports
  in
  render ~columns ~rows
