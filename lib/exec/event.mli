(** Branch trace events.

    The interpreter emits one event per executed branch {e instruction}
    (taken or not), mirroring what the paper's ATOM instrumentation
    recorded.  Straight-line instructions and pure fall-throughs produce no
    events. *)

type kind =
  | Cond of { mutable taken : bool; mutable taken_target : int }
      (** conditional branch; [taken] is the architectural direction under
          the current layout (not the semantic outcome), and [taken_target]
          is the branch's target address — known statically from the
          instruction encoding, and needed by BT/FNT-style predictors even
          when the branch falls through *)
  | Uncond  (** direct unconditional branch, including inserted jumps *)
  | Indirect_jump  (** switch / computed goto *)
  | Call  (** direct procedure call *)
  | Indirect_call
      (** virtual-dispatch call; grouped with indirect jumps in the paper's
          Table 2 statistics *)
  | Ret

type t = {
  mutable pc : int;  (** address of the branch instruction *)
  mutable target : int;  (** address execution actually continues at *)
  mutable kind : kind;
}
(** Fields are mutable so the flat replayer ({!Ba_trace.Replay}) can reuse
    one scratch event for the whole run instead of allocating per branch.
    The contract for every [on_event] consumer is therefore: read the
    fields, never retain the event (or its [Cond] payload) past the
    callback.  All in-repo consumers (Bep, Alpha, Trace_stats, Hotspots,
    Trace_io) copy what they need. *)

val is_taken : t -> bool
(** Did the instruction redirect fetch?  [true] for everything except a
    not-taken conditional. *)

val fallthrough_addr : t -> int
(** The address following the branch instruction — where a not-taken
    prediction resumes, and the return address pushed by calls. *)

val pp : Format.formatter -> t -> unit
