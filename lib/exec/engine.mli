(** The trace-driven interpreter.

    Executes a code image at basic-block granularity, emitting one
    {!Event.t} per branch instruction.  Branch semantics are drawn from the
    per-site behaviour streams, which are seeded from the program seed and
    the site's (procedure, block) identity — so the {e semantic} execution
    path is identical for every layout of the same program, and two runs of
    the same image are bit-identical.

    The execution budget is counted in {e block visits} ("steps"), not
    instructions: all layouts of a program then perform exactly the same
    semantic work, and differ only in inserted/removed jump instructions —
    the quantity branch alignment trades in. *)

type result = {
  insns : int;  (** instructions executed, branch instructions included *)
  steps : int;  (** semantic block visits *)
  branches : int;  (** events emitted *)
  completed : bool;  (** the program halted before exhausting the budget *)
}

val weighted_index : Ba_util.Rng.t -> float array -> int
(** One weighted draw: consume one float from [rng] and return the selected
    index.  Implemented as a binary search over the cumulative weights;
    draw-for-draw identical to the historical linear scan (same
    left-to-right summation order, same treatment of zero-weight entries).
    Exposed for the differential test wall. *)

val run :
  ?on_event:(Event.t -> unit) ->
  ?on_block:(addr:int -> size:int -> unit) ->
  ?on_outcome:(bool -> unit) ->
  ?on_choice:(int -> unit) ->
  ?profile:Ba_cfg.Profile.t ->
  ?max_steps:int ->
  Ba_layout.Image.t ->
  result
(** [run image] executes from the main procedure's entry.  [on_event]
    receives every branch event in order; [on_block] fires once per layout
    block visit with the address range of the instructions fetched
    (instruction-cache consumers attach here); [on_outcome] receives every
    conditional's {e semantic} outcome (the behaviour-stream boolean, not
    the layout-relative taken bit) and [on_choice] every switch/vcall's
    selected index, both in execution order — together they are exactly the
    layout-independent decision stream {!Ba_trace} records; [profile], when
    supplied, is updated with semantic visit/outcome counts (it must have
    been created for the same program); [max_steps] bounds the run (default
    [1_000_000]).  A [Ret] in the main procedure with an empty call stack
    halts the program like [Halt].

    Recursion is supported; the call stack is unbounded. *)

val profile_program : ?max_steps:int -> Ba_ir.Program.t -> Ba_cfg.Profile.t
(** Convenience: run the {e original} layout and return the collected
    profile — the first of the paper's two passes. *)
