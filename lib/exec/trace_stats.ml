type t = {
  (* executions per conditional-branch pc, indexed by pc and grown on
     demand: pcs are dense layout addresses, so a flat array beats a
     hashtable on the per-event path *)
  mutable cond_by_pc : int array;
  mutable cond_sites : int;  (* pcs with a nonzero slot *)
  mutable cond : int;
  mutable cond_taken : int;
  mutable uncond : int;
  mutable ijump : int;
  mutable call : int;
  mutable icall : int;
  mutable ret : int;
}

let create () =
  {
    cond_by_pc = Array.make 1024 0;
    cond_sites = 0;
    cond = 0;
    cond_taken = 0;
    uncond = 0;
    ijump = 0;
    call = 0;
    icall = 0;
    ret = 0;
  }

let bump_cond_pc t pc =
  if pc >= Array.length t.cond_by_pc then begin
    let grown = Array.make (max (pc + 1) (2 * Array.length t.cond_by_pc)) 0 in
    Array.blit t.cond_by_pc 0 grown 0 (Array.length t.cond_by_pc);
    t.cond_by_pc <- grown
  end;
  let c = Array.unsafe_get t.cond_by_pc pc in
  if c = 0 then t.cond_sites <- t.cond_sites + 1;
  Array.unsafe_set t.cond_by_pc pc (c + 1)

let on_event t (e : Event.t) =
  match e.kind with
  | Event.Cond { taken; _ } ->
    t.cond <- t.cond + 1;
    if taken then t.cond_taken <- t.cond_taken + 1;
    bump_cond_pc t e.pc
  | Event.Uncond -> t.uncond <- t.uncond + 1
  | Event.Indirect_jump -> t.ijump <- t.ijump + 1
  | Event.Call -> t.call <- t.call + 1
  | Event.Indirect_call -> t.icall <- t.icall + 1
  | Event.Ret -> t.ret <- t.ret + 1

type summary = {
  insns : int;
  pct_breaks : float;
  q50 : int;
  q90 : int;
  q99 : int;
  q100 : int;
  static_cond_sites : int;
  pct_taken : float;
  pct_cbr : float;
  pct_ij : float;
  pct_br : float;
  pct_call : float;
  pct_ret : float;
}

let summarize t ~program ~insns =
  let breaks = t.cond + t.uncond + t.ijump + t.call + t.icall + t.ret in
  let weights = ref [] in
  Array.iteri
    (fun pc c -> if c > 0 then weights := (pc, c) :: !weights)
    t.cond_by_pc;
  let weights = !weights in
  let q fraction = Ba_util.Stats.quantile_sites ~weights ~fraction in
  let ij = t.ijump + t.icall in
  {
    insns;
    pct_breaks = Ba_util.Stats.pct breaks insns;
    q50 = q 0.5;
    q90 = q 0.9;
    q99 = q 0.99;
    q100 = t.cond_sites;
    static_cond_sites = List.length (Ba_ir.Program.conditional_sites program);
    pct_taken = Ba_util.Stats.pct t.cond_taken t.cond;
    pct_cbr = Ba_util.Stats.pct t.cond breaks;
    pct_ij = Ba_util.Stats.pct ij breaks;
    pct_br = Ba_util.Stats.pct t.uncond breaks;
    pct_call = Ba_util.Stats.pct t.call breaks;
    pct_ret = Ba_util.Stats.pct t.ret breaks;
  }

let pct_cond_fallthrough t = Ba_util.Stats.pct (t.cond - t.cond_taken) t.cond
