let magic = "BATR1\n"

(* Tag bytes: conditionals fold their direction into the tag so the record
   needs no flag byte. *)
let tag_cond_taken = 0
let tag_cond_not_taken = 1
let tag_uncond = 2
let tag_indirect_jump = 3
let tag_call = 4
let tag_indirect_call = 5
let tag_ret = 6

let write_varint oc n =
  if n < 0 then invalid_arg "Trace_io: negative value";
  let rec go n =
    if n < 0x80 then output_byte oc n
    else begin
      output_byte oc (0x80 lor (n land 0x7F));
      go (n lsr 7)
    end
  in
  go n

let read_varint ic =
  let rec go shift acc =
    match input_byte ic with
    | b ->
      let acc = acc lor ((b land 0x7F) lsl shift) in
      if b land 0x80 = 0 then acc else go (shift + 7) acc
    | exception End_of_file -> failwith "Trace_io: truncated varint"
  in
  go 0 0

(* In-memory variants of the same LEB128 coding, for consumers (Ba_trace)
   that build packed streams in buffers rather than channels. *)

let buf_varint buf n =
  if n < 0 then invalid_arg "Trace_io: negative value";
  let rec go n =
    if n < 0x80 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7F)));
      go (n lsr 7)
    end
  in
  go n

let get_varint bytes off =
  let len = Bytes.length bytes in
  let rec go off shift acc =
    if off >= len then failwith "Trace_io: truncated varint"
    else
      let b = Char.code (Bytes.unsafe_get bytes off) in
      let acc = acc lor ((b land 0x7F) lsl shift) in
      if b land 0x80 = 0 then (acc, off + 1) else go (off + 1) (shift + 7) acc
  in
  go off 0 0

let write_header oc = output_string oc magic

let write_event oc (e : Event.t) =
  (match e.kind with
  | Event.Cond { taken; taken_target } ->
    output_byte oc (if taken then tag_cond_taken else tag_cond_not_taken);
    write_varint oc e.pc;
    write_varint oc e.target;
    write_varint oc taken_target
  | Event.Uncond ->
    output_byte oc tag_uncond;
    write_varint oc e.pc;
    write_varint oc e.target
  | Event.Indirect_jump ->
    output_byte oc tag_indirect_jump;
    write_varint oc e.pc;
    write_varint oc e.target
  | Event.Call ->
    output_byte oc tag_call;
    write_varint oc e.pc;
    write_varint oc e.target
  | Event.Indirect_call ->
    output_byte oc tag_indirect_call;
    write_varint oc e.pc;
    write_varint oc e.target
  | Event.Ret ->
    output_byte oc tag_ret;
    write_varint oc e.pc;
    write_varint oc e.target)

let record ~path f =
  let oc = open_out_bin path in
  write_header oc;
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> f ~on_event:(write_event oc))

let read_event ic tag =
  let pc = read_varint ic in
  let target = read_varint ic in
  let kind =
    if tag = tag_cond_taken || tag = tag_cond_not_taken then
      Event.Cond { taken = tag = tag_cond_taken; taken_target = read_varint ic }
    else if tag = tag_uncond then Event.Uncond
    else if tag = tag_indirect_jump then Event.Indirect_jump
    else if tag = tag_call then Event.Call
    else if tag = tag_indirect_call then Event.Indirect_call
    else if tag = tag_ret then Event.Ret
    else failwith (Printf.sprintf "Trace_io: unknown record tag %d" tag)
  in
  { Event.pc; target; kind }

let replay ~path f =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let header = really_input_string ic (String.length magic) in
      if header <> magic then failwith "Trace_io: bad magic";
      let count = ref 0 in
      let rec loop () =
        match input_byte ic with
        | tag ->
          f (read_event ic tag);
          incr count;
          loop ()
        | exception End_of_file -> ()
      in
      loop ();
      !count)

let iter_file = replay
