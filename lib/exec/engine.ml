open Ba_ir
open Ba_layout

type result = {
  insns : int;
  steps : int;
  branches : int;
  completed : bool;
}

(* Per-site generators must be identical across layouts of the same program,
   so they are derived from the program seed and the site's semantic identity
   only.  SplitMix64's output mixer makes nearby seeds produce independent
   streams. *)
let site_seed program_seed p b salt =
  program_seed lxor (p * 0x9E3779B9) lxor (b * 0x85EBCA6B) lxor (salt * 0xC2B2AE35)

(* Cumulative weights, accumulated left-to-right so [prefix.(n-1)] is the
   same float the old per-visit [Array.fold_left ( +. )] produced. *)
let prefix_sums weights =
  let n = Array.length weights in
  let prefix = Array.make n 0.0 in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. weights.(i);
    prefix.(i) <- !acc
  done;
  prefix

(* Smallest [i] with [x < prefix.(i)], capped at [n-1] — the same index the
   historical linear scan returned (including its treatment of zero-weight
   entries), found by binary search instead of rescanning floats. *)
let pick_weighted rng prefix =
  let n = Array.length prefix in
  let x = Ba_util.Rng.float rng prefix.(n - 1) in
  let lo = ref 0 and hi = ref (n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if x < prefix.(mid) then hi := mid else lo := mid + 1
  done;
  !lo

let weighted_index rng weights = pick_weighted rng (prefix_sums weights)

let cond_behavior (image : Image.t) p b =
  let proc = Program.proc image.Image.program p in
  match (Proc.block proc b).Block.term with
  | Term.Cond { behavior; _ } -> behavior
  | _ -> invalid_arg "Engine: conditional layout block without conditional terminator"

type site_state = { behavior : Behavior.t; state : Behavior.state }

(* A switch/vcall site: its layout-independent RNG plus the cumulative
   weights, computed once per site instead of once per visit. *)
type choice_site = { c_rng : Ba_util.Rng.t; prefix : float array }

let m_runs = Ba_obs.Counter.make ~unit_:"runs" "exec.engine.runs"
let m_steps = Ba_obs.Counter.make ~unit_:"blocks" "exec.engine.steps"
let m_insns = Ba_obs.Counter.make ~unit_:"insns" "exec.engine.insns"
let m_branches = Ba_obs.Counter.make ~unit_:"branches" "exec.engine.branches"
let m_truncated = Ba_obs.Counter.make ~unit_:"runs" "exec.engine.truncated"

type resume =
  | Next_pos of int  (* continue at this layout position of the caller *)
  | Via_jump of { jump_pc : int; target_pos : int }

type frame = { frame_proc : Term.proc_id; resume : resume }

let run ?(on_event = fun _ -> ()) ?(on_block = fun ~addr:_ ~size:_ -> ())
    ?(on_outcome = fun _ -> ()) ?(on_choice = fun _ -> ()) ?profile
    ?(max_steps = 1_000_000) (image : Image.t) =
  let program = image.Image.program in
  let seed = program.Program.seed in
  let cond_sites : (int * int, site_state) Hashtbl.t = Hashtbl.create 256 in
  let choice_sites : (int * int * int, choice_site) Hashtbl.t = Hashtbl.create 64 in
  let cond_site p b =
    match Hashtbl.find_opt cond_sites (p, b) with
    | Some s -> s
    | None ->
      let behavior = cond_behavior image p b in
      let rng = Ba_util.Rng.create (site_seed seed p b 1) in
      let s = { behavior; state = Behavior.init_state behavior rng } in
      Hashtbl.add cond_sites (p, b) s;
      s
  in
  let choice_site p b salt weights =
    match Hashtbl.find_opt choice_sites (p, b, salt) with
    | Some s -> s
    | None ->
      let s =
        { c_rng = Ba_util.Rng.create (site_seed seed p b salt);
          prefix = prefix_sums weights }
      in
      Hashtbl.add choice_sites (p, b, salt) s;
      s
  in
  let record_visit p b =
    match profile with Some prof -> Ba_cfg.Profile.record_visit prof p b | None -> ()
  in
  let record_cond p b v =
    match profile with Some prof -> Ba_cfg.Profile.record_cond prof p b v | None -> ()
  in
  let record_switch p b i =
    match profile with Some prof -> Ba_cfg.Profile.record_switch prof p b i | None -> ()
  in
  let insns = ref 0 in
  let steps = ref 0 in
  let branches = ref 0 in
  let history = ref 0 in
  let stack : frame list ref = ref [] in
  let emit ev =
    incr branches;
    on_event ev
  in
  let pos_addr p pos = (Image.lblock image p pos).Linear.addr in
  let cur_proc = ref program.Program.main in
  let cur_pos = ref 0 in
  let running = ref true in
  let completed = ref false in
  let halt () =
    running := false;
    completed := true
  in
  let enter_call ~caller ~cont ~pc ~callee =
    let resume =
      match cont with
      | Linear.Fall -> Next_pos (!cur_pos + 1)
      | Linear.Jump_to pos -> Via_jump { jump_pc = pc + 1; target_pos = pos }
    in
    stack := { frame_proc = caller; resume } :: !stack;
    cur_proc := callee;
    cur_pos := 0
  in
  while !running && !steps < max_steps do
    let p = !cur_proc in
    let lb = Image.lblock image p !cur_pos in
    let b = lb.Linear.src in
    incr steps;
    record_visit p b;
    insns := !insns + lb.Linear.insns;
    let pc = Linear.branch_pc lb in
    (* Instructions fetched for this visit: the straight-line body plus any
       terminator instructions actually executed on the taken path. *)
    let fetched =
      match lb.Linear.term with
      | Linear.Lnone -> lb.Linear.insns
      | Linear.Ljump _ | Linear.Lswitch _ | Linear.Lcall _ | Linear.Lvcall _
      | Linear.Lret | Linear.Lhalt | Linear.Lcond _ -> lb.Linear.insns + 1
    in
    on_block ~addr:lb.Linear.addr ~size:fetched;
    match lb.Linear.term with
    | Linear.Lnone -> incr cur_pos
    | Linear.Ljump target_pos ->
      incr insns;
      emit { Event.pc; target = pos_addr p target_pos; kind = Event.Uncond };
      cur_pos := target_pos
    | Linear.Lcond { taken_pos; taken_on; inserted_jump } -> begin
      incr insns;
      let site = cond_site p b in
      let outcome = Behavior.next site.behavior site.state ~history:!history in
      history := ((!history lsl 1) lor if outcome then 1 else 0) land 0xFFFF;
      record_cond p b outcome;
      on_outcome outcome;
      let taken_target = pos_addr p taken_pos in
      if outcome = taken_on then begin
        emit
          { Event.pc; target = taken_target;
            kind = Event.Cond { taken = true; taken_target } };
        cur_pos := taken_pos
      end
      else begin
        emit
          { Event.pc; target = pc + 1;
            kind = Event.Cond { taken = false; taken_target } };
        match inserted_jump with
        | None -> incr cur_pos
        | Some j ->
          incr insns;
          on_block ~addr:(pc + 1) ~size:1;
          emit { Event.pc = pc + 1; target = pos_addr p j; kind = Event.Uncond };
          cur_pos := j
      end
    end
    | Linear.Lswitch { positions; weights } ->
      incr insns;
      let site = choice_site p b 2 weights in
      let idx = pick_weighted site.c_rng site.prefix in
      record_switch p b idx;
      on_choice idx;
      let target_pos = positions.(idx) in
      emit { Event.pc; target = pos_addr p target_pos; kind = Event.Indirect_jump };
      cur_pos := target_pos
    | Linear.Lcall { callee; cont } ->
      incr insns;
      emit { Event.pc; target = Image.entry_addr image callee; kind = Event.Call };
      enter_call ~caller:p ~cont ~pc ~callee
    | Linear.Lvcall { callees; weights; cont } ->
      incr insns;
      let site = choice_site p b 3 weights in
      let idx = pick_weighted site.c_rng site.prefix in
      on_choice idx;
      let callee = callees.(idx) in
      emit
        { Event.pc; target = Image.entry_addr image callee; kind = Event.Indirect_call };
      enter_call ~caller:p ~cont ~pc ~callee
    | Linear.Lret -> begin
      incr insns;
      match !stack with
      | [] ->
        (* Returning from main ends the program. *)
        emit { Event.pc; target = 0; kind = Event.Ret };
        halt ()
      | frame :: rest -> begin
        stack := rest;
        match frame.resume with
        | Next_pos pos ->
          emit { Event.pc; target = pos_addr frame.frame_proc pos; kind = Event.Ret };
          cur_proc := frame.frame_proc;
          cur_pos := pos
        | Via_jump { jump_pc; target_pos } ->
          emit { Event.pc; target = jump_pc; kind = Event.Ret };
          incr insns;
          on_block ~addr:jump_pc ~size:1;
          emit
            {
              Event.pc = jump_pc;
              target = pos_addr frame.frame_proc target_pos;
              kind = Event.Uncond;
            };
          cur_proc := frame.frame_proc;
          cur_pos := target_pos
      end
    end
    | Linear.Lhalt ->
      incr insns;
      halt ()
  done;
  Ba_obs.Counter.incr m_runs;
  Ba_obs.Counter.add m_steps !steps;
  Ba_obs.Counter.add m_insns !insns;
  Ba_obs.Counter.add m_branches !branches;
  if not !completed then Ba_obs.Counter.incr m_truncated;
  { insns = !insns; steps = !steps; branches = !branches; completed = !completed }

let profile_program ?max_steps program =
  Ba_obs.Span.with_ "profile" @@ fun () ->
  let profile = Ba_cfg.Profile.create program in
  let image = Image.original program in
  let (_ : result) = run ~profile ?max_steps image in
  profile
