type kind =
  | Cond of { mutable taken : bool; mutable taken_target : int }
  | Uncond
  | Indirect_jump
  | Call
  | Indirect_call
  | Ret

type t = { mutable pc : int; mutable target : int; mutable kind : kind }

let is_taken e = match e.kind with Cond { taken; _ } -> taken | _ -> true

let fallthrough_addr e = e.pc + 1

let pp_kind ppf = function
  | Cond { taken; _ } -> Fmt.pf ppf "cond(%s)" (if taken then "taken" else "not-taken")
  | Uncond -> Fmt.string ppf "uncond"
  | Indirect_jump -> Fmt.string ppf "ijump"
  | Call -> Fmt.string ppf "call"
  | Indirect_call -> Fmt.string ppf "icall"
  | Ret -> Fmt.string ppf "ret"

let pp ppf e = Fmt.pf ppf "%a pc=%d target=%d" pp_kind e.kind e.pc e.target
