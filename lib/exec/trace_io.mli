(** Branch-trace serialisation.

    The paper's tooling (ATOM) let the authors re-simulate architectures
    without storing traces; this module provides the complementary
    workflow: record a run's branch events once to a compact binary file,
    then replay them through any number of predictors offline.

    Format: a magic header, then one record per event — a tag byte (event
    kind, with the conditional's taken bit folded in) followed by the pc,
    target and (for conditionals) taken-target as unsigned LEB128 varints.
    Typical traces cost 4-7 bytes per event. *)

val write_header : out_channel -> unit

val write_event : out_channel -> Event.t -> unit

(** {1 Varint coder}

    The unsigned LEB128 coder backing the event records, exposed so other
    trace formats ({!Ba_trace.Trace}) share one wire encoding. *)

val write_varint : out_channel -> int -> unit
(** Raises [Invalid_argument] on negative values. *)

val read_varint : in_channel -> int
(** Raises [Failure] on a truncated stream. *)

val buf_varint : Buffer.t -> int -> unit
(** In-memory [write_varint]. *)

val get_varint : bytes -> int -> int * int
(** [get_varint bytes off] decodes one varint starting at [off]; returns
    the value and the offset just past it. *)

val record : path:string -> (on_event:(Event.t -> unit) -> 'a) -> 'a
(** [record ~path f] opens [path], writes the header, runs [f] with a
    callback that appends each event, and closes the file (also on
    exceptions).  Compose with {!Engine.run}:
    [record ~path (fun ~on_event -> Engine.run ~on_event image)]. *)

val replay : path:string -> (Event.t -> unit) -> int
(** Stream every event of a trace file to the callback; returns the event
    count.  Raises [Failure] on a malformed file. *)

val iter_file : path:string -> (Event.t -> unit) -> int
(** Alias of {!replay}. *)
