(** Branch execution penalty (BEP) simulation — the paper's §6 metric.

    A [t] consumes the branch-event stream of one execution and charges each
    event misfetch/mispredict cycles according to one branch architecture:

    - {b static / PHT architectures}: unconditional branches, correctly
      predicted taken conditional branches and direct calls cost a misfetch;
      mispredicted conditionals, mispredicted returns and all indirect jumps
      cost a mispredict (§6);
    - {b BTB architectures}: taken branches that hit in the BTB are free;
      unconditional/call BTB misses cost a misfetch; wrong directions or
      targets cost a mispredict.

    Every architecture shares a 32-entry return stack (configurable). *)

type arch =
  | Static_fallthrough
  | Static_btfnt
  | Static_likely of Ba_predict.Likely_bits.t
  | Pht_direct of { entries : int }
  | Pht_gshare of { entries : int; history_bits : int }
  | Pht_global of { history_bits : int }
      (** Pan et al.'s degenerate two-level scheme: the global history
          register alone indexes the pattern table (§3) *)
  | Pht_local of { history_bits : int; branch_entries : int }
      (** Yeh & Patt's local-history two-level scheme (§3) *)
  | Btb_arch of { entries : int; assoc : int }

val arch_label : arch -> string

type penalties = { misfetch : int; mispredict : int }

val default_penalties : penalties
(** misfetch 1, mispredict 4 — the paper's simulation numbers. *)

type counts = {
  mutable misfetches : int;
  mutable mispredicts : int;
  mutable cond : int;
  mutable cond_taken : int;
  mutable cond_correct : int;
  mutable uncond : int;
  mutable calls : int;
  mutable indirect : int;
  mutable rets : int;
  mutable rets_correct : int;
}

type t

val create : ?penalties:penalties -> ?return_stack_depth:int -> arch -> t
val on_event : t -> Ba_exec.Event.t -> unit
val counts : t -> counts
(** The live books (mutated by {!on_event}); read them when the event
    stream is done. *)

val flush_obs : t -> unit
(** Add this simulator's contribution to the global [sim.bep.*] counters —
    the event loop itself never touches the metrics registry.  Call exactly
    once per simulation; {!Ba_sim.Runner.simulate} does. *)

val bep : t -> int
(** Total penalty cycles charged so far. *)

val cond_accuracy : t -> float
(** Fraction of executed conditional branches predicted correctly. *)

val relative_cpi : t -> insns:int -> orig_insns:int -> float
(** The paper's metric: [(insns + bep) / orig_insns] — cycles per original
    instruction, so that layouts that add or remove jumps stay comparable. *)
