open Ba_exec
open Ba_predict

type arch =
  | Static_fallthrough
  | Static_btfnt
  | Static_likely of Likely_bits.t
  | Pht_direct of { entries : int }
  | Pht_gshare of { entries : int; history_bits : int }
  | Pht_global of { history_bits : int }
  | Pht_local of { history_bits : int; branch_entries : int }
  | Btb_arch of { entries : int; assoc : int }

let arch_label = function
  | Static_fallthrough -> "FALLTHROUGH"
  | Static_btfnt -> "BT/FNT"
  | Static_likely _ -> "LIKELY"
  | Pht_direct { entries } -> Printf.sprintf "PHT-%d" entries
  | Pht_gshare { entries; _ } -> Printf.sprintf "gshare-%d" entries
  | Pht_global { history_bits } -> Printf.sprintf "GAg-%d" (1 lsl history_bits)
  | Pht_local { history_bits; _ } -> Printf.sprintf "PAg-%d" (1 lsl history_bits)
  | Btb_arch { entries; assoc } -> Printf.sprintf "BTB-%d/%d" entries assoc

type penalties = { misfetch : int; mispredict : int }

let default_penalties = { misfetch = 1; mispredict = 4 }

type counts = {
  mutable misfetches : int;
  mutable mispredicts : int;
  mutable cond : int;
  mutable cond_taken : int;
  mutable cond_correct : int;
  mutable uncond : int;
  mutable calls : int;
  mutable indirect : int;
  mutable rets : int;
  mutable rets_correct : int;
}

type predictor =
  | Rule of Static_rule.t
  | Table of Pht.t
  | Adaptive of Two_level.t
  | Buffer of Btb.t

type t = {
  predictor : predictor;
  ras : Return_stack.t;
  penalties : penalties;
  c : counts;
  m_arch_penalty : Ba_obs.Counter.t;  (* sim.bep.arch.<label>.penalty_cycles *)
}

let m_misfetch = Ba_obs.Counter.make ~unit_:"events" "sim.bep.misfetch"
let m_mispredict = Ba_obs.Counter.make ~unit_:"events" "sim.bep.mispredict"
let m_misfetch_cycles = Ba_obs.Counter.make ~unit_:"cycles" "sim.bep.misfetch_cycles"

let m_mispredict_cycles =
  Ba_obs.Counter.make ~unit_:"cycles" "sim.bep.mispredict_cycles"

let m_cond = Ba_obs.Counter.make ~unit_:"branches" "sim.bep.class.cond"
let m_cond_taken = Ba_obs.Counter.make ~unit_:"branches" "sim.bep.class.cond_taken"
let m_cond_correct = Ba_obs.Counter.make ~unit_:"branches" "sim.bep.class.cond_correct"
let m_uncond = Ba_obs.Counter.make ~unit_:"branches" "sim.bep.class.uncond"
let m_call = Ba_obs.Counter.make ~unit_:"branches" "sim.bep.class.call"
let m_indirect = Ba_obs.Counter.make ~unit_:"branches" "sim.bep.class.indirect"
let m_ret = Ba_obs.Counter.make ~unit_:"branches" "sim.bep.class.ret"
let m_ret_correct = Ba_obs.Counter.make ~unit_:"branches" "sim.bep.class.ret_correct"

let zero_counts () =
  {
    misfetches = 0;
    mispredicts = 0;
    cond = 0;
    cond_taken = 0;
    cond_correct = 0;
    uncond = 0;
    calls = 0;
    indirect = 0;
    rets = 0;
    rets_correct = 0;
  }

let create ?(penalties = default_penalties) ?(return_stack_depth = 32) arch =
  let predictor =
    match arch with
    | Static_fallthrough -> Rule Static_rule.Fallthrough
    | Static_btfnt -> Rule Static_rule.Btfnt
    | Static_likely bits -> Rule (Static_rule.Likely (Likely_bits.hint bits))
    | Pht_direct { entries } -> Table (Pht.create_direct ~entries)
    | Pht_gshare { entries; history_bits } -> Table (Pht.create_gshare ~entries ~history_bits)
    | Pht_global { history_bits } -> Adaptive (Two_level.create_global ~history_bits ())
    | Pht_local { history_bits; branch_entries } ->
      Adaptive (Two_level.create_local ~history_bits ~branch_entries ())
    | Btb_arch { entries; assoc } -> Buffer (Btb.create ~entries ~assoc)
  in
  {
    predictor;
    ras = Return_stack.create ~depth:return_stack_depth;
    penalties;
    c = zero_counts ();
    m_arch_penalty =
      Ba_obs.Counter.make ~unit_:"cycles"
        (Printf.sprintf "sim.bep.arch.%s.penalty_cycles" (arch_label arch));
  }

let misfetch t = t.c.misfetches <- t.c.misfetches + 1
let mispredict t = t.c.mispredicts <- t.c.mispredicts + 1

let on_cond t (e : Event.t) ~taken ~taken_target =
  t.c.cond <- t.c.cond + 1;
  if taken then t.c.cond_taken <- t.c.cond_taken + 1;
  match t.predictor with
  | Rule rule ->
    let predicted = Static_rule.predict_taken rule ~pc:e.pc ~taken_target in
    if predicted = taken then begin
      t.c.cond_correct <- t.c.cond_correct + 1;
      if taken then misfetch t
    end
    else mispredict t
  | Table pht ->
    let predicted = Pht.predict pht ~pc:e.pc in
    Pht.update pht ~pc:e.pc ~taken;
    if predicted = taken then begin
      t.c.cond_correct <- t.c.cond_correct + 1;
      if taken then misfetch t
    end
    else mispredict t
  | Adaptive two ->
    let predicted = Two_level.predict two ~pc:e.pc in
    Two_level.update two ~pc:e.pc ~taken;
    if predicted = taken then begin
      t.c.cond_correct <- t.c.cond_correct + 1;
      if taken then misfetch t
    end
    else mispredict t
  | Buffer btb ->
    let correct =
      match Btb.lookup btb ~pc:e.pc with
      | Btb.Hit { target; predict_taken } ->
        if predict_taken then taken && target = e.target else not taken
      | Btb.Miss -> not taken
    in
    Btb.update btb ~pc:e.pc ~taken ~target:e.target;
    if correct then t.c.cond_correct <- t.c.cond_correct + 1
    else mispredict t

let on_always_taken t (e : Event.t) =
  (* Unconditional direct transfers: target known at decode, so the cost is
     a misfetch for the static and PHT architectures; a BTB hit removes even
     that. *)
  match t.predictor with
  | Rule _ | Table _ | Adaptive _ -> misfetch t
  | Buffer btb -> (
    match Btb.lookup btb ~pc:e.pc with
    | Btb.Hit _ -> Btb.update btb ~pc:e.pc ~taken:true ~target:e.target
    | Btb.Miss ->
      misfetch t;
      Btb.update btb ~pc:e.pc ~taken:true ~target:e.target)

let on_indirect t (e : Event.t) =
  match t.predictor with
  | Rule _ | Table _ | Adaptive _ -> mispredict t
  | Buffer btb -> (
    match Btb.lookup btb ~pc:e.pc with
    | Btb.Hit { target; _ } ->
      if target <> e.target then mispredict t;
      Btb.update btb ~pc:e.pc ~taken:true ~target:e.target
    | Btb.Miss ->
      mispredict t;
      Btb.update btb ~pc:e.pc ~taken:true ~target:e.target)

let on_event t (e : Event.t) =
  match e.kind with
  | Event.Cond { taken; taken_target } -> on_cond t e ~taken ~taken_target
  | Event.Uncond ->
    t.c.uncond <- t.c.uncond + 1;
    on_always_taken t e
  | Event.Call ->
    t.c.calls <- t.c.calls + 1;
    on_always_taken t e;
    Return_stack.push t.ras (Event.fallthrough_addr e)
  | Event.Indirect_jump ->
    t.c.indirect <- t.c.indirect + 1;
    on_indirect t e
  | Event.Indirect_call ->
    t.c.indirect <- t.c.indirect + 1;
    on_indirect t e;
    Return_stack.push t.ras (Event.fallthrough_addr e)
  | Event.Ret -> (
    t.c.rets <- t.c.rets + 1;
    match Return_stack.pop t.ras with
    | Some addr when addr = e.target ->
      t.c.rets_correct <- t.c.rets_correct + 1
    | Some _ | None -> mispredict t)

let counts t = t.c

let bep t =
  (t.c.misfetches * t.penalties.misfetch) + (t.c.mispredicts * t.penalties.mispredict)

(* Every global metric above is a pure function of the final books, so the
   simulation loop never touches the registry: the books are flushed once,
   when the run is over (the runner does this; so must anyone driving
   [on_event] by hand who wants the sim.bep.* counters populated).  The
   flushed values are exactly what per-event increments would have
   produced. *)
let flush_obs t =
  (match t.predictor with
  | Rule _ -> ()
  | Table pht -> Pht.flush_obs pht
  | Adaptive two -> Two_level.flush_obs two
  | Buffer btb -> Btb.flush_obs btb);
  Return_stack.flush_obs t.ras;
  let c = t.c in
  Ba_obs.Counter.add m_misfetch c.misfetches;
  Ba_obs.Counter.add m_mispredict c.mispredicts;
  Ba_obs.Counter.add m_misfetch_cycles (c.misfetches * t.penalties.misfetch);
  Ba_obs.Counter.add m_mispredict_cycles (c.mispredicts * t.penalties.mispredict);
  Ba_obs.Counter.add t.m_arch_penalty (bep t);
  Ba_obs.Counter.add m_cond c.cond;
  Ba_obs.Counter.add m_cond_taken c.cond_taken;
  Ba_obs.Counter.add m_cond_correct c.cond_correct;
  Ba_obs.Counter.add m_uncond c.uncond;
  Ba_obs.Counter.add m_call c.calls;
  Ba_obs.Counter.add m_indirect c.indirect;
  Ba_obs.Counter.add m_ret c.rets;
  Ba_obs.Counter.add m_ret_correct c.rets_correct

let cond_accuracy t = Ba_util.Stats.ratio t.c.cond_correct t.c.cond

let relative_cpi t ~insns ~orig_insns =
  float_of_int (insns + bep t) /. float_of_int orig_insns
