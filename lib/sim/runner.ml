type outcome = {
  result : Ba_exec.Engine.result;
  sims : (Bep.arch * Bep.t) array;
  stats : Ba_exec.Trace_stats.t;
}

let simulate ?max_steps ?penalties ?return_stack_depth ?trace ~archs image =
  Ba_obs.Span.with_ "simulate" @@ fun () ->
  let sims =
    Array.of_list
      (List.map (fun arch -> (arch, Bep.create ?penalties ?return_stack_depth arch)) archs)
  in
  let n = Array.length sims in
  let stats = Ba_exec.Trace_stats.create () in
  (* one fused dispatch loop over the sim array — no per-event closure list
     walk *)
  let on_event ev =
    Ba_exec.Trace_stats.on_event stats ev;
    for i = 0 to n - 1 do
      Bep.on_event (snd (Array.unsafe_get sims i)) ev
    done
  in
  let result =
    match trace with
    | Some tr -> Ba_trace.Replay.run ~on_event (Ba_trace.Flat.of_image image) tr
    | None -> Ba_exec.Engine.run ?max_steps ~on_event image
  in
  (* The event loop never touches the metrics registry; each simulator's
     books land there in one flush per run. *)
  Array.iter (fun (_, sim) -> Bep.flush_obs sim) sims;
  { result; sims; stats }

let simulate_alpha ?max_steps ?config ?fp_fraction ?trace image =
  let issue =
    match fp_fraction with
    | None -> None
    | Some fp_fraction ->
      Some (Ba_isa.Pairing.prefix_table (Ba_isa.Codegen.of_image ~fp_fraction image))
  in
  let alpha = Alpha.create ?config ?issue () in
  let result =
    match trace with
    | Some tr ->
      Ba_trace.Replay.run ~on_event:(Alpha.on_event alpha)
        ~on_block:(Alpha.on_block alpha)
        (Ba_trace.Flat.of_image image) tr
    | None ->
      Ba_exec.Engine.run ?max_steps ~on_event:(Alpha.on_event alpha)
        ~on_block:(Alpha.on_block alpha) image
  in
  Alpha.flush_obs alpha;
  (result, alpha)

let relative_cpis outcome ~orig_insns =
  Array.to_list
    (Array.map
       (fun (arch, sim) ->
         (arch, Bep.relative_cpi sim ~insns:outcome.result.Ba_exec.Engine.insns ~orig_insns))
       outcome.sims)
