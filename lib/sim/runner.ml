type outcome = {
  result : Ba_exec.Engine.result;
  sims : (Bep.arch * Bep.t) list;
  stats : Ba_exec.Trace_stats.t;
}

let simulate ?max_steps ?penalties ?return_stack_depth ~archs image =
  Ba_obs.Span.with_ "simulate" @@ fun () ->
  let sims = List.map (fun arch -> (arch, Bep.create ?penalties ?return_stack_depth arch)) archs in
  let stats = Ba_exec.Trace_stats.create () in
  let on_event ev =
    Ba_exec.Trace_stats.on_event stats ev;
    List.iter (fun (_, sim) -> Bep.on_event sim ev) sims
  in
  let result = Ba_exec.Engine.run ?max_steps ~on_event image in
  { result; sims; stats }

let simulate_alpha ?max_steps ?config ?fp_fraction image =
  let issue =
    match fp_fraction with
    | None -> None
    | Some fp_fraction ->
      Some (Ba_isa.Pairing.prefix_table (Ba_isa.Codegen.of_image ~fp_fraction image))
  in
  let alpha = Alpha.create ?config ?issue () in
  let result =
    Ba_exec.Engine.run ?max_steps ~on_event:(Alpha.on_event alpha)
      ~on_block:(Alpha.on_block alpha) image
  in
  (result, alpha)

let relative_cpis outcome ~orig_insns =
  List.map
    (fun (arch, sim) ->
      (arch, Bep.relative_cpi sim ~insns:outcome.result.Ba_exec.Engine.insns ~orig_insns))
    outcome.sims
