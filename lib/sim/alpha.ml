open Ba_exec
open Ba_predict

type config = {
  lines : int;
  insns_per_line : int;
  return_stack_depth : int;
  issue_width : float;
  misfetch_cycles : float;
  mispredict_cycles : float;
  squash_rate : float;
  icache_lines : int;
  icache_miss_cycles : float;
}

let default_config =
  {
    lines = 256;
    insns_per_line = 8;
    return_stack_depth = 32;
    issue_width = 2.0;
    misfetch_cycles = 1.0;
    mispredict_cycles = 5.0;
    squash_rate = 0.3;
    (* The icache is scaled to the workload suite's footprints: 512
       instructions against code footprints of up to ~800 (vs the real
       2048-instruction 21064 icache against megabyte binaries).  The scaled
       ratio preserves the interesting regime: whole programs do not fit,
       aligned hot paths do. *)
    icache_lines = 64;
    icache_miss_cycles = 8.0;
  }

type t = {
  config : config;
  bits : Alpha_bits.t;
  ras : Return_stack.t;
  icache : Icache.t;
  issue : (int, int array) Hashtbl.t option;
  mutable issue_cycles : int;
  mutable misfetches : int;
  mutable mispredicts : int;
}

let create ?(config = default_config) ?issue () =
  {
    config;
    bits = Alpha_bits.create ~lines:config.lines ~insns_per_line:config.insns_per_line ();
    ras = Return_stack.create ~depth:config.return_stack_depth;
    icache =
      Icache.create ~lines:config.icache_lines ~insns_per_line:config.insns_per_line ();
    issue;
    issue_cycles = 0;
    misfetches = 0;
    mispredicts = 0;
  }

let on_event t (e : Event.t) =
  match e.kind with
  | Event.Cond { taken; taken_target } ->
    let predicted = Alpha_bits.predict t.bits ~pc:e.pc ~taken_target in
    Alpha_bits.update t.bits ~pc:e.pc ~taken;
    if predicted = taken then begin
      if taken then t.misfetches <- t.misfetches + 1
    end
    else t.mispredicts <- t.mispredicts + 1
  | Event.Uncond -> t.misfetches <- t.misfetches + 1
  | Event.Call ->
    t.misfetches <- t.misfetches + 1;
    Return_stack.push t.ras (Event.fallthrough_addr e)
  | Event.Indirect_jump -> t.mispredicts <- t.mispredicts + 1
  | Event.Indirect_call ->
    t.mispredicts <- t.mispredicts + 1;
    Return_stack.push t.ras (Event.fallthrough_addr e)
  | Event.Ret -> (
    match Return_stack.pop t.ras with
    | Some addr when addr = e.target -> ()
    | Some _ | None -> t.mispredicts <- t.mispredicts + 1)

let on_block t ~addr ~size =
  ignore (Icache.touch_range t.icache ~addr ~size);
  match t.issue with
  | None -> ()
  | Some prefix -> (
    (* Inserted jumps report a 1-instruction range starting mid-block; they
       are not in the prefix table and issue alone. *)
    match Hashtbl.find_opt prefix addr with
    | Some c -> t.issue_cycles <- t.issue_cycles + c.(min size (Array.length c - 1))
    | None -> t.issue_cycles <- t.issue_cycles + size)

let cycles t ~insns =
  (* With a concrete listing, base cycles come from the dual-issue pairing
     model; otherwise from the ideal issue width. *)
  (match t.issue with
  | Some _ -> float_of_int t.issue_cycles
  | None -> float_of_int insns /. t.config.issue_width)
  +. (float_of_int t.misfetches *. t.config.misfetch_cycles *. (1.0 -. t.config.squash_rate))
  +. (float_of_int t.mispredicts *. t.config.mispredict_cycles)
  +. (float_of_int (Icache.misses t.icache) *. t.config.icache_miss_cycles)

(* The component structures batch their predict.* metrics; one flush per
   simulation (the runner's job) moves them to the registry. *)
let flush_obs t =
  Alpha_bits.flush_obs t.bits;
  Return_stack.flush_obs t.ras;
  Icache.flush_obs t.icache

let misfetches t = t.misfetches
let mispredicts t = t.mispredicts
let icache_misses t = Icache.misses t.icache
