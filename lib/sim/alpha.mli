(** Execution-time model of the dual-issue Alpha AXP 21064 (paper §6.1,
    Figure 4).

    The 21064 predicts conditional branches with per-instruction history
    bits in the instruction cache, initialised to BT/FNT on line fill
    ({!Ba_predict.Alpha_bits}); its combined mispredict penalty is ten
    instruction slots and a misfetch loses two, and misfetch stalls are
    frequently squashed by other pipeline stalls (the paper estimates
    roughly 30%).  With dual issue, ten instruction slots are five cycles
    and two slots one cycle.

    Execution time here is [instructions / issue_width + penalty cycles];
    Figure 4 reports each aligned program's time relative to the original
    binary's. *)

type config = {
  lines : int;  (** predictor-bit lines (the on-chip icache's tag geometry) *)
  insns_per_line : int;
  return_stack_depth : int;
  issue_width : float;
  misfetch_cycles : float;
  mispredict_cycles : float;
  squash_rate : float;  (** fraction of misfetch stalls hidden by other stalls *)
  icache_lines : int;
      (** instruction-cache size for the locality model, scaled to the
          workload suite's footprints (see DESIGN.md) *)
  icache_miss_cycles : float;
}

val default_config : config
(** 256 x 8 predictor-bit lines, 32-entry return stack, dual issue,
    misfetch 1 cycle, mispredict 5 cycles, 30% squash, 64-line icache at
    8 cycles per miss. *)

type t

val create : ?config:config -> ?issue:(int, int array) Hashtbl.t -> unit -> t
(** [issue], when given (a {!Ba_isa.Pairing.prefix_table} of the image being
    executed), switches the base cycle count from the ideal
    [instructions / issue_width] to the dual-issue pairing model. *)

val on_event : t -> Ba_exec.Event.t -> unit

val on_block : t -> addr:int -> size:int -> unit
(** Feed one executed block's fetch range to the instruction-cache model
    (attach to {!Ba_exec.Engine.run}'s [on_block]). *)

val flush_obs : t -> unit
(** Flush the component predictors' batched [predict.*] metrics to the
    registry; {!Ba_sim.Runner.simulate_alpha} calls this once per run. *)

val cycles : t -> insns:int -> float
(** Modelled execution time in cycles for a run that executed [insns]
    instructions. *)

val misfetches : t -> int
val mispredicts : t -> int
val icache_misses : t -> int
