(** One execution, many architectures.

    Branch predictors are independent consumers of the same event stream, so
    a single interpreter pass can drive every architecture of interest at
    once — the trace-driven methodology of the paper, without storing the
    trace.  With [?trace], even the interpreter pass is elided: the recorded
    semantic decisions are replayed through the image's flat form
    ({!Ba_trace.Replay}), producing the byte-identical event stream at a
    fraction of the cost. *)

type outcome = {
  result : Ba_exec.Engine.result;
  sims : (Bep.arch * Bep.t) array;  (** in the order given *)
  stats : Ba_exec.Trace_stats.t;  (** trace statistics of the same run *)
}

val simulate :
  ?max_steps:int ->
  ?penalties:Bep.penalties ->
  ?return_stack_depth:int ->
  ?trace:Ba_trace.Trace.t ->
  archs:Bep.arch list ->
  Ba_layout.Image.t ->
  outcome
(** When [trace] is supplied it must have been recorded from the same
    program (any layout) with a budget of at least [max_steps]; the replay
    drives every simulator with exactly the events a direct run would, and
    [max_steps] is ignored in favour of the recorded step count. *)

val simulate_alpha :
  ?max_steps:int ->
  ?config:Alpha.config ->
  ?fp_fraction:float ->
  ?trace:Ba_trace.Trace.t ->
  Ba_layout.Image.t ->
  Ba_exec.Engine.result * Alpha.t
(** Run the 21064 timing model over one image.  [fp_fraction], when given,
    materialises the image's instructions ({!Ba_isa.Codegen}) with that
    floating-point share and uses the dual-issue pairing model for base
    cycles instead of the ideal issue width.  [trace] replays as in
    {!simulate}. *)

val relative_cpis :
  outcome -> orig_insns:int -> (Bep.arch * float) list
(** Relative CPI of every simulated architecture, against the original
    program's instruction count. *)
