type set = { tags : int array; stamps : int array }

type t = {
  sets : set array;
  insns_per_line : int;
  mutable clock : int;
  mutable accesses : int;
  mutable misses : int;
  (* flush_obs reports deltas since the previous flush *)
  mutable flushed_accesses : int;
  mutable flushed_misses : int;
}

let create ?(lines = 256) ?(insns_per_line = 8) ?(assoc = 1) () =
  if lines <= 0 || assoc <= 0 || lines mod assoc <> 0 then
    invalid_arg "Icache.create: lines must be a positive multiple of assoc";
  let n_sets = lines / assoc in
  if n_sets land (n_sets - 1) <> 0 then
    invalid_arg "Icache.create: set count must be a power of two";
  if insns_per_line <= 0 then invalid_arg "Icache.create: bad line size";
  {
    sets = Array.init n_sets (fun _ -> { tags = Array.make assoc (-1); stamps = Array.make assoc 0 });
    insns_per_line;
    clock = 0;
    accesses = 0;
    misses = 0;
    flushed_accesses = 0;
    flushed_misses = 0;
  }

let m_access = Ba_obs.Counter.make ~unit_:"lines" "predict.icache.access"
let m_miss = Ba_obs.Counter.make ~unit_:"lines" "predict.icache.miss"

(* Pure indexing, shared with static conflict analysis. *)
let line_of ~insns_per_line ~addr = addr / insns_per_line
let set_index ~lines ~assoc ~line = line land ((lines / assoc) - 1)

let access_line t line_no =
  t.accesses <- t.accesses + 1;
  t.clock <- t.clock + 1;
  let assoc = Array.length t.sets.(0).tags in
  let lines = Array.length t.sets * assoc in
  let set = t.sets.(set_index ~lines ~assoc ~line:line_no) in
  let ways = Array.length set.tags in
  let rec find i = if i = ways then None else if set.tags.(i) = line_no then Some i else find (i + 1) in
  match find 0 with
  | Some way -> set.stamps.(way) <- t.clock
  | None ->
    t.misses <- t.misses + 1;
    (* Evict the LRU way (invalid ways have stamp 0 and lose ties). *)
    let victim = ref 0 in
    for w = 1 to ways - 1 do
      if set.stamps.(w) < set.stamps.(!victim) then victim := w
    done;
    set.tags.(!victim) <- line_no;
    set.stamps.(!victim) <- t.clock

let touch_range t ~addr ~size =
  if size <= 0 then 0
  else begin
    let before = t.misses in
    let first = line_of ~insns_per_line:t.insns_per_line ~addr in
    let last = line_of ~insns_per_line:t.insns_per_line ~addr:(addr + size - 1) in
    for line = first to last do
      access_line t line
    done;
    t.misses - before
  end

let misses t = t.misses
let accesses t = t.accesses

let miss_rate t = if t.accesses = 0 then 0.0 else float_of_int t.misses /. float_of_int t.accesses

let flush_obs t =
  Ba_obs.Counter.add m_access (t.accesses - t.flushed_accesses);
  Ba_obs.Counter.add m_miss (t.misses - t.flushed_misses);
  t.flushed_accesses <- t.accesses;
  t.flushed_misses <- t.misses
