(** Return-address stack (Kaeli & Emma style; paper §6 simulates a 32-entry
    stack in every architecture).

    A fixed-depth circular stack: pushing beyond the depth silently
    overwrites the oldest entry; popping an empty stack predicts nothing
    (a guaranteed misprediction). *)

type t

val create : depth:int -> t
val push : t -> int -> unit
val pop : t -> int option
val depth : t -> int
val occupancy : t -> int

val flush_obs : t -> unit
(** Flush the books accumulated since the last flush to the
    [predict.ras.*] counters and depth histogram. *)
