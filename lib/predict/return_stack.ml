type t = {
  slots : int array;
  mutable top : int;  (* index of next free slot *)
  mutable count : int;  (* valid entries, <= depth *)
  (* local books, flushed to the predict.ras.* metrics once per run *)
  mutable s_pushes : int;
  mutable s_pops : int;
  mutable s_overflows : int;
  mutable s_underflows : int;
  s_depths : int array;  (* pushes that left the stack at depth d, d <= depth *)
}

let create ~depth =
  if depth <= 0 then invalid_arg "Return_stack.create: depth must be positive";
  { slots = Array.make depth 0; top = 0; count = 0; s_pushes = 0; s_pops = 0;
    s_overflows = 0; s_underflows = 0; s_depths = Array.make (depth + 1) 0 }

let depth t = Array.length t.slots

let m_push = Ba_obs.Counter.make ~unit_:"events" "predict.ras.push"
let m_pop = Ba_obs.Counter.make ~unit_:"events" "predict.ras.pop"
let m_overflow = Ba_obs.Counter.make ~unit_:"events" "predict.ras.overflow"
let m_underflow = Ba_obs.Counter.make ~unit_:"events" "predict.ras.underflow"

let m_depth =
  Ba_obs.Histogram.make ~unit_:"entries"
    ~buckets:[| 1; 2; 4; 8; 16; 32; 64; 128 |]
    "predict.ras.depth"

let push t addr =
  t.s_pushes <- t.s_pushes + 1;
  if t.count = Array.length t.slots then t.s_overflows <- t.s_overflows + 1;
  t.slots.(t.top) <- addr;
  t.top <- (t.top + 1) mod Array.length t.slots;
  t.count <- min (t.count + 1) (Array.length t.slots);
  t.s_depths.(t.count) <- t.s_depths.(t.count) + 1

let pop t =
  t.s_pops <- t.s_pops + 1;
  if t.count = 0 then begin
    t.s_underflows <- t.s_underflows + 1;
    None
  end
  else begin
    t.top <- (t.top + Array.length t.slots - 1) mod Array.length t.slots;
    t.count <- t.count - 1;
    Some t.slots.(t.top)
  end

let occupancy t = t.count

let flush_obs t =
  Ba_obs.Counter.add m_push t.s_pushes;
  Ba_obs.Counter.add m_pop t.s_pops;
  Ba_obs.Counter.add m_overflow t.s_overflows;
  Ba_obs.Counter.add m_underflow t.s_underflows;
  for d = 0 to Array.length t.s_depths - 1 do
    Ba_obs.Histogram.observe_n m_depth d ~n:t.s_depths.(d);
    t.s_depths.(d) <- 0
  done;
  t.s_pushes <- 0;
  t.s_pops <- 0;
  t.s_overflows <- 0;
  t.s_underflows <- 0
