type t = {
  slots : int array;
  mutable top : int;  (* index of next free slot *)
  mutable count : int;  (* valid entries, <= depth *)
}

let create ~depth =
  if depth <= 0 then invalid_arg "Return_stack.create: depth must be positive";
  { slots = Array.make depth 0; top = 0; count = 0 }

let depth t = Array.length t.slots

let m_push = Ba_obs.Counter.make ~unit_:"events" "predict.ras.push"
let m_pop = Ba_obs.Counter.make ~unit_:"events" "predict.ras.pop"
let m_overflow = Ba_obs.Counter.make ~unit_:"events" "predict.ras.overflow"
let m_underflow = Ba_obs.Counter.make ~unit_:"events" "predict.ras.underflow"

let m_depth =
  Ba_obs.Histogram.make ~unit_:"entries"
    ~buckets:[| 1; 2; 4; 8; 16; 32; 64; 128 |]
    "predict.ras.depth"

let push t addr =
  Ba_obs.Counter.incr m_push;
  if t.count = Array.length t.slots then Ba_obs.Counter.incr m_overflow;
  t.slots.(t.top) <- addr;
  t.top <- (t.top + 1) mod Array.length t.slots;
  t.count <- min (t.count + 1) (Array.length t.slots);
  Ba_obs.Histogram.observe m_depth t.count

let pop t =
  Ba_obs.Counter.incr m_pop;
  if t.count = 0 then begin
    Ba_obs.Counter.incr m_underflow;
    None
  end
  else begin
    t.top <- (t.top + Array.length t.slots - 1) mod Array.length t.slots;
    t.count <- t.count - 1;
    Some t.slots.(t.top)
  end

let occupancy t = t.count
