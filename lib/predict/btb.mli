(** Branch target buffers (paper §3).

    A set-associative cache of {e taken} branches: each entry stores the
    branch address (tag), its most recent taken target, and a 2-bit counter
    used to predict the direction of conditional branches.  Lookups that
    miss predict the fall-through path.  Replacement is LRU within a set.

    The paper simulates a 64-entry 2-way and a 256-entry 4-way BTB (the
    latter the Pentium's configuration). *)

type t

type lookup =
  | Hit of { target : int; predict_taken : bool }
  | Miss

val create : entries:int -> assoc:int -> t
(** [entries] must be a positive multiple of [assoc], with a power-of-two
    set count. *)

val lookup : t -> pc:int -> lookup
(** Probe without updating replacement state. *)

val update : t -> pc:int -> taken:bool -> target:int -> unit
(** Train after resolving the branch: hits update the counter (and the
    stored target when taken); misses allocate an entry only when the branch
    was taken, evicting the set's LRU entry.  Newly allocated entries start
    strongly taken. *)

val entries : t -> int
val assoc : t -> int

(** {1 Pure indexing}

    Address-to-set/tag functions, factored out so static conflict analysis
    ({!Ba_conflict}) evaluates exactly the placement the simulator uses.
    [entries]/[assoc] constraints are those of {!create}. *)

val set_index : entries:int -> assoc:int -> pc:int -> int
(** Set the branch at [pc] maps to: its address's low set bits. *)

val tag_of : pc:int -> int
(** Tag stored and compared for [pc]: the full branch address. *)

val occupancy : t -> int
(** Number of valid entries; alignment reduces this by making branches fall
    through (the paper's explanation of the small-BTB benefit). *)

val flush_obs : t -> unit
(** Flush the books accumulated since the last flush to the
    [predict.btb.*] / [predict.counter2.*] counters. *)
