type scheme =
  | Global of { mutable history : int }
  | Local of { histories : int array }

type t = {
  pattern : int array;  (* Counter2 states *)
  pattern_mask : int;
  scheme : scheme;
  (* local books, flushed to the predict.two_level.* counters once per run *)
  mutable s_lookups : int;
  mutable s_hits : int;
  mutable s_sat_hi : int;
  mutable s_sat_lo : int;
}

let check_bits bits =
  if bits < 1 || bits > 24 then invalid_arg "Two_level: history bits out of range"

let create_global ?(history_bits = 12) () =
  check_bits history_bits;
  {
    pattern = Array.make (1 lsl history_bits) (Counter2.initial :> int);
    pattern_mask = (1 lsl history_bits) - 1;
    scheme = Global { history = 0 };
    s_lookups = 0;
    s_hits = 0;
    s_sat_hi = 0;
    s_sat_lo = 0;
  }

let create_local ?(history_bits = 12) ?(branch_entries = 1024) () =
  check_bits history_bits;
  if branch_entries <= 0 || branch_entries land (branch_entries - 1) <> 0 then
    invalid_arg "Two_level.create_local: branch_entries must be a power of two";
  {
    pattern = Array.make (1 lsl history_bits) (Counter2.initial :> int);
    pattern_mask = (1 lsl history_bits) - 1;
    scheme = Local { histories = Array.make branch_entries 0 };
    s_lookups = 0;
    s_hits = 0;
    s_sat_hi = 0;
    s_sat_lo = 0;
  }

(* Pure indexing, shared with static conflict analysis: which per-branch
   history register the local scheme consults for an address.  Two branches
   mapping to the same register interleave their outcome streams. *)
let local_index ~branch_entries ~pc = pc land (branch_entries - 1)

let index t ~pc =
  match t.scheme with
  | Global { history } -> history land t.pattern_mask
  | Local { histories } ->
    histories.(local_index ~branch_entries:(Array.length histories) ~pc)
    land t.pattern_mask

let m_lookup = Ba_obs.Counter.make ~unit_:"events" "predict.two_level.lookup"
let m_hit = Ba_obs.Counter.make ~unit_:"events" "predict.two_level.hit"

let predict t ~pc =
  t.s_lookups <- t.s_lookups + 1;
  Counter2.predict (Counter2.of_int t.pattern.(index t ~pc))

let update t ~pc ~taken =
  let i = index t ~pc in
  let c = t.pattern.(i) in
  if Counter2.predict (Counter2.of_int c) = taken then t.s_hits <- t.s_hits + 1;
  if taken then begin if c = 3 then t.s_sat_hi <- t.s_sat_hi + 1 end
  else if c = 0 then t.s_sat_lo <- t.s_sat_lo + 1;
  t.pattern.(i) <- (Counter2.update (Counter2.of_int c) ~taken :> int);
  let bit = if taken then 1 else 0 in
  match t.scheme with
  | Global g -> g.history <- ((g.history lsl 1) lor bit) land t.pattern_mask
  | Local { histories } ->
    let j = local_index ~branch_entries:(Array.length histories) ~pc in
    histories.(j) <- ((histories.(j) lsl 1) lor bit) land t.pattern_mask

let name t =
  match t.scheme with
  | Global _ -> Printf.sprintf "global-2level-%d" (t.pattern_mask + 1)
  | Local _ -> Printf.sprintf "local-2level-%d" (t.pattern_mask + 1)

let flush_obs t =
  Ba_obs.Counter.add m_lookup t.s_lookups;
  Ba_obs.Counter.add m_hit t.s_hits;
  Counter2.flush_sat ~hi:t.s_sat_hi ~lo:t.s_sat_lo;
  t.s_lookups <- 0;
  t.s_hits <- 0;
  t.s_sat_hi <- 0;
  t.s_sat_lo <- 0
