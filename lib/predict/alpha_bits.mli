(** The Alpha AXP 21064's conditional-branch predictor (paper §6.1).

    Each instruction in the on-chip cache carries a single history bit
    recording the branch's last direction.  When a cache line is (re)filled,
    the bits reset to a static BT/FNT prediction taken from the sign of each
    branch's displacement.  The paper describes the resulting behaviour as
    "a cross between a direct-mapped PHT table and a BT/FNT architecture";
    this module models exactly that: a direct-mapped line store where
    evictions fall back to BT/FNT.

    The 21064's 8 KB instruction cache has 32-byte lines; with 4-byte
    instructions that is 8 instructions per line and 256 lines. *)

type t

val create : ?lines:int -> ?insns_per_line:int -> unit -> t
(** Defaults: 256 lines of 8 instructions. *)

val predict : t -> pc:int -> taken_target:int -> bool
(** Predicted direction of the conditional at [pc].  If [pc]'s line was
    evicted (or never seen), the prediction is BT/FNT on [taken_target]. *)

val update : t -> pc:int -> taken:bool -> unit
(** Record the resolved direction in [pc]'s history bit, filling the line if
    needed. *)

(** {1 Pure indexing}

    Address-to-line functions, factored out so static conflict analysis
    ({!Ba_conflict}) evaluates exactly the mapping the simulator uses. *)

val line_no_of : insns_per_line:int -> pc:int -> int
(** Cache line number (also the line's tag) of an instruction address. *)

val slot_of : insns_per_line:int -> pc:int -> int
(** History-bit slot of [pc] within its line. *)

val line_index : lines:int -> line_no:int -> int
(** Which stored line a line number maps to ([lines] is a power of two);
    distinct line numbers with equal indices evict each other's bits. *)

val flush_obs : t -> unit
(** Flush the cold-bit and refill tallies accumulated since the last flush
    to the [predict.alpha.*] counters. *)
