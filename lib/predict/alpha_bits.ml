type line = {
  mutable tag : int;  (* -1 = invalid *)
  bits : bool array;  (* history bit per instruction slot *)
  valid : bool array;  (* has this slot's bit been written since the fill? *)
}

type t = {
  lines : line array;
  insns_per_line : int;
  (* local books, flushed to the predict.alpha.* counters once per run *)
  mutable s_cold : int;
  mutable s_refills : int;
}

let create ?(lines = 256) ?(insns_per_line = 8) () =
  if lines <= 0 || lines land (lines - 1) <> 0 then
    invalid_arg "Alpha_bits.create: line count must be a power of two";
  if insns_per_line <= 0 then invalid_arg "Alpha_bits.create: bad line size";
  {
    lines =
      Array.init lines (fun _ ->
          {
            tag = -1;
            bits = Array.make insns_per_line false;
            valid = Array.make insns_per_line false;
          });
    insns_per_line;
    s_cold = 0;
    s_refills = 0;
  }

(* Pure indexing, shared with static conflict analysis: which predictor
   line an address lives in (its tag), which stored line that maps to, and
   its history-bit slot within the line. *)
let line_no_of ~insns_per_line ~pc = pc / insns_per_line
let slot_of ~insns_per_line ~pc = pc mod insns_per_line
let line_index ~lines ~line_no = line_no land (lines - 1)

let locate t ~pc =
  let line_no = line_no_of ~insns_per_line:t.insns_per_line ~pc in
  let line = t.lines.(line_index ~lines:(Array.length t.lines) ~line_no) in
  (line, line_no, slot_of ~insns_per_line:t.insns_per_line ~pc)

let m_refill = Ba_obs.Counter.make ~unit_:"events" "predict.alpha.refill"
let m_cold = Ba_obs.Counter.make ~unit_:"events" "predict.alpha.cold"

let refill line tag =
  line.tag <- tag;
  Array.fill line.valid 0 (Array.length line.valid) false

let predict t ~pc ~taken_target =
  let line, tag, slot = locate t ~pc in
  if line.tag = tag && line.valid.(slot) then line.bits.(slot)
  else begin
    t.s_cold <- t.s_cold + 1;
    taken_target <= pc (* static BT/FNT on a cold bit *)
  end

let update t ~pc ~taken =
  let line, tag, slot = locate t ~pc in
  if line.tag <> tag then begin
    t.s_refills <- t.s_refills + 1;
    refill line tag
  end;
  line.bits.(slot) <- taken;
  line.valid.(slot) <- true

let flush_obs t =
  Ba_obs.Counter.add m_cold t.s_cold;
  Ba_obs.Counter.add m_refill t.s_refills;
  t.s_cold <- 0;
  t.s_refills <- 0
