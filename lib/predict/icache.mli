(** Instruction cache model.

    Branch alignment improves more than prediction: packing the hot path
    into consecutive addresses also improves instruction-cache locality
    (the Hwu & Chang / Pettis & Hansen motivation the paper builds on, and
    part of Figure 4's unattributed hardware gains).  This is a classic
    set-associative cache of instruction addresses with LRU replacement;
    the 21064 configuration is 8 KB direct-mapped with 32-byte lines
    (8 instructions per line at 4 bytes each).

    Addresses are in instruction units, matching {!Ba_layout.Image}. *)

type t

val create : ?lines:int -> ?insns_per_line:int -> ?assoc:int -> unit -> t
(** Defaults: 256 lines x 8 instructions, direct-mapped. *)

val touch_range : t -> addr:int -> size:int -> int
(** Mark the instructions [addr .. addr+size-1] as fetched; returns the
    number of line misses this incurs. *)

val misses : t -> int
val accesses : t -> int
(** Cumulative line accesses/misses since creation. *)

val miss_rate : t -> float

(** {1 Pure indexing}

    Address-to-line/set functions, factored out so static conflict analysis
    ({!Ba_conflict}) evaluates exactly the mapping the cache model uses. *)

val line_of : insns_per_line:int -> addr:int -> int
(** Cache line number of an instruction address. *)

val set_index : lines:int -> assoc:int -> line:int -> int
(** Set a line number maps to ([lines]/[assoc] power-of-two sets). *)

val flush_obs : t -> unit
(** Flush accesses and misses accumulated since the last flush to the
    [predict.icache.*] counters. *)
