(** Pattern history tables (paper §3, "Dynamic Branch Prediction Methods").

    Both variants store 2-bit saturating counters and predict conditional
    branch {e directions} only (they do nothing for misfetches):

    - {b direct-mapped}: indexed by the branch address;
    - {b gshare}: indexed by the branch address XORed with a global
      taken/not-taken history register — the variant McFarling found most
      accurate, used by the paper as its "correlation PHT".

    The paper's configuration is 4096 entries (1 KByte of 2-bit counters)
    and, for the correlation table, a 12-bit global history. *)

type t

val create_direct : entries:int -> t
(** [entries] must be a power of two. *)

val create_gshare : entries:int -> history_bits:int -> t

val predict : t -> pc:int -> bool
(** Predicted direction for the conditional at [pc] (does not update any
    state). *)

val update : t -> pc:int -> taken:bool -> unit
(** Train the indexed counter and (gshare) shift the outcome into the global
    history.  Call after {!predict} for each executed conditional. *)

val entries : t -> int

(** {1 Pure indexing}

    The address-to-entry functions, factored out so static analysis
    ({!Ba_conflict}) evaluates exactly the hash the simulator uses.
    [entries] must be a power of two, as in {!create_direct}. *)

val direct_index : entries:int -> pc:int -> int
(** Entry the direct-mapped table consults for the conditional at [pc]. *)

val gshare_index : entries:int -> history:int -> pc:int -> int
(** Entry the gshare table consults for [pc] under a given global history
    register value.  The history is dynamic state; address-only analyses
    conventionally project it to 0. *)

val flush_obs : t -> unit
(** Flush the books accumulated since the last flush to the
    [predict.pht.*] / [predict.counter2.*] counters; the lookup and update
    paths themselves never touch the registry. *)
