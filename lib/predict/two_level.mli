(** Two-level adaptive predictors (paper §3).

    The paper's correlation PHT is McFarling's xor (gshare) variant, in
    {!Pht}.  This module provides the other two schemes §3 discusses, for
    completeness of the predictor library:

    - {b Global} — the "degenerate method of Pan et al.": a k-bit global
      taken/not-taken shift register directly indexes the pattern table
      (the paper's example: a 12-bit register and a 4096-entry table).  The
      branch address is not used at all.
    - {b Local} — Yeh & Patt's two-level scheme: a per-branch history table
      (indexed by address) holds each branch's own last k outcomes, which
      index the shared pattern table of 2-bit counters.  Local history
      predicts fixed per-branch patterns (e.g. loop trip counts up to k)
      perfectly once trained, regardless of interleaving. *)

type t

val create_global : ?history_bits:int -> unit -> t
(** Default 12 bits (4096-entry pattern table). *)

val create_local :
  ?history_bits:int -> ?branch_entries:int -> unit -> t
(** Defaults: 12-bit local histories, 1024 branch-history entries. *)

val predict : t -> pc:int -> bool
val update : t -> pc:int -> taken:bool -> unit
val name : t -> string

val local_index : branch_entries:int -> pc:int -> int
(** Pure indexing of the {e local} scheme's per-branch history table: which
    history register the conditional at [pc] reads and shifts.  Shared with
    static conflict analysis ({!Ba_conflict}); [branch_entries] must be a
    power of two, as in {!create_local}. *)

val flush_obs : t -> unit
(** Flush the books accumulated since the last flush to the
    [predict.two_level.*] / [predict.counter2.*] counters. *)
