type scheme = Direct | Gshare of { history_bits : int }

type t = {
  table : int array;  (* Counter2 states *)
  owner : int array;  (* last updating pc per entry; -1 = untouched. Metric-only. *)
  mask : int;
  scheme : scheme;
  mutable history : int;
  (* local books, flushed to the predict.pht.* counters once per run *)
  mutable s_lookups : int;
  mutable s_hits : int;
  mutable s_aliases : int;
  mutable s_sat_hi : int;
  mutable s_sat_lo : int;
}

let m_lookup = Ba_obs.Counter.make ~unit_:"events" "predict.pht.lookup"
let m_hit = Ba_obs.Counter.make ~unit_:"events" "predict.pht.hit"
let m_alias = Ba_obs.Counter.make ~unit_:"events" "predict.pht.alias"

let check_power_of_two n =
  if n <= 0 || n land (n - 1) <> 0 then
    invalid_arg "Pht: entry count must be a positive power of two"

let create_direct ~entries =
  check_power_of_two entries;
  {
    table = Array.make entries (Counter2.initial :> int);
    owner = Array.make entries (-1);
    mask = entries - 1;
    scheme = Direct;
    history = 0;
    s_lookups = 0;
    s_hits = 0;
    s_aliases = 0;
    s_sat_hi = 0;
    s_sat_lo = 0;
  }

let create_gshare ~entries ~history_bits =
  check_power_of_two entries;
  if history_bits < 1 || history_bits > 30 then
    invalid_arg "Pht.create_gshare: history_bits out of range";
  {
    table = Array.make entries (Counter2.initial :> int);
    owner = Array.make entries (-1);
    mask = entries - 1;
    scheme = Gshare { history_bits };
    history = 0;
    s_lookups = 0;
    s_hits = 0;
    s_aliases = 0;
    s_sat_hi = 0;
    s_sat_lo = 0;
  }

(* The pure indexing functions.  Simulation (below) and static conflict
   analysis (Ba_conflict) both go through these, so the two views of "which
   counter does this branch hash to" cannot drift apart. *)
let direct_index ~entries ~pc = pc land (entries - 1)
let gshare_index ~entries ~history ~pc = (pc lxor history) land (entries - 1)

let index t ~pc =
  let entries = Array.length t.table in
  match t.scheme with
  | Direct -> direct_index ~entries ~pc
  | Gshare _ -> gshare_index ~entries ~history:t.history ~pc

let predict t ~pc =
  t.s_lookups <- t.s_lookups + 1;
  Counter2.predict (Counter2.of_int t.table.(index t ~pc))

let update t ~pc ~taken =
  let i = index t ~pc in
  let c = t.table.(i) in
  if Counter2.predict (Counter2.of_int c) = taken then t.s_hits <- t.s_hits + 1;
  if t.owner.(i) >= 0 && t.owner.(i) <> pc then t.s_aliases <- t.s_aliases + 1;
  if taken then begin if c = 3 then t.s_sat_hi <- t.s_sat_hi + 1 end
  else if c = 0 then t.s_sat_lo <- t.s_sat_lo + 1;
  t.owner.(i) <- pc;
  t.table.(i) <- (Counter2.update (Counter2.of_int c) ~taken :> int);
  match t.scheme with
  | Direct -> ()
  | Gshare { history_bits } ->
    t.history <- ((t.history lsl 1) lor if taken then 1 else 0) land ((1 lsl history_bits) - 1)

let entries t = Array.length t.table

let flush_obs t =
  Ba_obs.Counter.add m_lookup t.s_lookups;
  Ba_obs.Counter.add m_hit t.s_hits;
  Ba_obs.Counter.add m_alias t.s_aliases;
  Counter2.flush_sat ~hi:t.s_sat_hi ~lo:t.s_sat_lo;
  t.s_lookups <- 0;
  t.s_hits <- 0;
  t.s_aliases <- 0;
  t.s_sat_hi <- 0;
  t.s_sat_lo <- 0
