type scheme = Direct | Gshare of { history_bits : int }

type t = {
  table : int array;  (* Counter2 states *)
  owner : int array;  (* last updating pc per entry; -1 = untouched. Metric-only. *)
  mask : int;
  scheme : scheme;
  mutable history : int;
}

let m_lookup = Ba_obs.Counter.make ~unit_:"events" "predict.pht.lookup"
let m_hit = Ba_obs.Counter.make ~unit_:"events" "predict.pht.hit"
let m_alias = Ba_obs.Counter.make ~unit_:"events" "predict.pht.alias"

let check_power_of_two n =
  if n <= 0 || n land (n - 1) <> 0 then
    invalid_arg "Pht: entry count must be a positive power of two"

let create_direct ~entries =
  check_power_of_two entries;
  {
    table = Array.make entries (Counter2.initial :> int);
    owner = Array.make entries (-1);
    mask = entries - 1;
    scheme = Direct;
    history = 0;
  }

let create_gshare ~entries ~history_bits =
  check_power_of_two entries;
  if history_bits < 1 || history_bits > 30 then
    invalid_arg "Pht.create_gshare: history_bits out of range";
  {
    table = Array.make entries (Counter2.initial :> int);
    owner = Array.make entries (-1);
    mask = entries - 1;
    scheme = Gshare { history_bits };
    history = 0;
  }

let index t ~pc =
  match t.scheme with
  | Direct -> pc land t.mask
  | Gshare _ -> (pc lxor t.history) land t.mask

let predict t ~pc =
  Ba_obs.Counter.incr m_lookup;
  Counter2.predict (Counter2.of_int t.table.(index t ~pc))

let update t ~pc ~taken =
  let i = index t ~pc in
  if Counter2.predict (Counter2.of_int t.table.(i)) = taken then
    Ba_obs.Counter.incr m_hit;
  if t.owner.(i) >= 0 && t.owner.(i) <> pc then Ba_obs.Counter.incr m_alias;
  t.owner.(i) <- pc;
  t.table.(i) <- (Counter2.update (Counter2.of_int t.table.(i)) ~taken :> int);
  match t.scheme with
  | Direct -> ()
  | Gshare { history_bits } ->
    t.history <- ((t.history lsl 1) lor if taken then 1 else 0) land ((1 lsl history_bits) - 1)

let entries t = Array.length t.table
