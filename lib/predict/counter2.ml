type t = int

let initial = 1
let strongly_taken = 3

let m_sat_hi = Ba_obs.Counter.make ~unit_:"updates" "predict.counter2.sat_hi"
let m_sat_lo = Ba_obs.Counter.make ~unit_:"updates" "predict.counter2.sat_lo"

let predict c = c >= 2

let update c ~taken =
  if taken then begin
    if c = 3 then Ba_obs.Counter.incr m_sat_hi;
    min 3 (c + 1)
  end
  else begin
    if c = 0 then Ba_obs.Counter.incr m_sat_lo;
    max 0 (c - 1)
  end

let of_int n = max 0 (min 3 n)
