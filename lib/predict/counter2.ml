type t = int

let initial = 1
let strongly_taken = 3

let m_sat_hi = Ba_obs.Counter.make ~unit_:"updates" "predict.counter2.sat_hi"
let m_sat_lo = Ba_obs.Counter.make ~unit_:"updates" "predict.counter2.sat_lo"

let predict c = c >= 2

let update c ~taken = if taken then min 3 (c + 1) else max 0 (c - 1)

(* Saturation is detected by the structures that own the counters (a state-3
   taken update or a state-0 not-taken update) and flushed here in bulk once
   their simulation ends, keeping the per-update path registry-free. *)
let flush_sat ~hi ~lo =
  Ba_obs.Counter.add m_sat_hi hi;
  Ba_obs.Counter.add m_sat_lo lo

let of_int n = max 0 (min 3 n)
