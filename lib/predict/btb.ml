type entry = {
  mutable tag : int;  (* full pc; -1 = invalid *)
  mutable target : int;
  mutable counter : int;  (* Counter2 state *)
  mutable stamp : int;  (* LRU clock *)
}

type t = {
  sets : entry array array;  (* sets.(set).(way) *)
  mutable clock : int;
  (* local books, flushed to the predict.btb.* counters once per run *)
  mutable s_lookups : int;
  mutable s_hits : int;
  mutable s_misses : int;
  mutable s_allocs : int;
  mutable s_evicts : int;
  mutable s_sat_hi : int;
  mutable s_sat_lo : int;
}

type lookup = Hit of { target : int; predict_taken : bool } | Miss

let m_lookup = Ba_obs.Counter.make ~unit_:"events" "predict.btb.lookup"
let m_hit = Ba_obs.Counter.make ~unit_:"events" "predict.btb.hit"
let m_miss = Ba_obs.Counter.make ~unit_:"events" "predict.btb.miss"
let m_alloc = Ba_obs.Counter.make ~unit_:"events" "predict.btb.alloc"
let m_evict = Ba_obs.Counter.make ~unit_:"events" "predict.btb.evict"

let create ~entries ~assoc =
  if assoc <= 0 || entries <= 0 || entries mod assoc <> 0 then
    invalid_arg "Btb.create: entries must be a positive multiple of assoc";
  let n_sets = entries / assoc in
  if n_sets land (n_sets - 1) <> 0 then
    invalid_arg "Btb.create: set count must be a power of two";
  let fresh_entry () = { tag = -1; target = 0; counter = 0; stamp = 0 } in
  {
    sets = Array.init n_sets (fun _ -> Array.init assoc (fun _ -> fresh_entry ()));
    clock = 0;
    s_lookups = 0;
    s_hits = 0;
    s_misses = 0;
    s_allocs = 0;
    s_evicts = 0;
    s_sat_hi = 0;
    s_sat_lo = 0;
  }

(* Pure indexing, shared with static conflict analysis: the tag is the full
   branch address, the set is its low bits. *)
let set_index ~entries ~assoc ~pc = pc land ((entries / assoc) - 1)
let tag_of ~pc = pc

let set_of t ~pc =
  let assoc = Array.length t.sets.(0) in
  let entries = Array.length t.sets * assoc in
  t.sets.(set_index ~entries ~assoc ~pc)

let find_way set ~pc =
  let tag = tag_of ~pc in
  let n = Array.length set in
  let rec scan i =
    if i = n then None
    else if set.(i).tag = tag then Some set.(i)
    else scan (i + 1)
  in
  scan 0

let lookup t ~pc =
  t.s_lookups <- t.s_lookups + 1;
  match find_way (set_of t ~pc) ~pc with
  | Some e ->
    t.s_hits <- t.s_hits + 1;
    Hit { target = e.target; predict_taken = Counter2.predict (Counter2.of_int e.counter) }
  | None ->
    t.s_misses <- t.s_misses + 1;
    Miss

let touch t e =
  t.clock <- t.clock + 1;
  e.stamp <- t.clock

let update t ~pc ~taken ~target =
  let set = set_of t ~pc in
  match find_way set ~pc with
  | Some e ->
    if taken then begin if e.counter = 3 then t.s_sat_hi <- t.s_sat_hi + 1 end
    else if e.counter = 0 then t.s_sat_lo <- t.s_sat_lo + 1;
    e.counter <- (Counter2.update (Counter2.of_int e.counter) ~taken :> int);
    if taken then e.target <- target;
    touch t e
  | None ->
    if taken then begin
      (* Allocate, evicting the LRU way (invalid entries have stamp 0 and
         lose ties, so they are filled first). *)
      let victim = Array.fold_left (fun acc e -> if e.stamp < acc.stamp then e else acc) set.(0) set in
      t.s_allocs <- t.s_allocs + 1;
      if victim.tag >= 0 then t.s_evicts <- t.s_evicts + 1;
      victim.tag <- tag_of ~pc;
      victim.target <- target;
      victim.counter <- (Counter2.strongly_taken :> int);
      touch t victim
    end

let entries t = Array.length t.sets * Array.length t.sets.(0)
let assoc t = Array.length t.sets.(0)

let occupancy t =
  Array.fold_left
    (fun acc set -> Array.fold_left (fun acc e -> if e.tag >= 0 then acc + 1 else acc) acc set)
    0 t.sets

let flush_obs t =
  Ba_obs.Counter.add m_lookup t.s_lookups;
  Ba_obs.Counter.add m_hit t.s_hits;
  Ba_obs.Counter.add m_miss t.s_misses;
  Ba_obs.Counter.add m_alloc t.s_allocs;
  Ba_obs.Counter.add m_evict t.s_evicts;
  Counter2.flush_sat ~hi:t.s_sat_hi ~lo:t.s_sat_lo;
  t.s_lookups <- 0;
  t.s_hits <- 0;
  t.s_misses <- 0;
  t.s_allocs <- 0;
  t.s_evicts <- 0;
  t.s_sat_hi <- 0;
  t.s_sat_lo <- 0
