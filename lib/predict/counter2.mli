(** Two-bit saturating up/down counters, the prediction state used by both
    the PHTs and the BTB entries (paper §3). *)

type t = private int
(** 0 = strongly not-taken, 1 = weakly not-taken, 2 = weakly taken,
    3 = strongly taken. *)

val initial : t
(** Weakly not-taken: a cold counter predicts the fall-through, matching the
    paper's BTB/PHT fall-through-on-miss convention. *)

val strongly_taken : t
(** Starting state for entries allocated on a taken branch. *)

val predict : t -> bool
val update : t -> taken:bool -> t

val flush_sat : hi:int -> lo:int -> unit
(** Bulk-record [hi] saturated-taken and [lo] saturated-not-taken updates
    on the [predict.counter2.*] counters; owners of counter state call this
    from their own flush instead of touching the registry per update. *)

val of_int : int -> t
(** Clamped to [\[0, 3\]]; for tests. *)
