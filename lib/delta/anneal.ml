open Ba_layout
open Ba_core

(* Simulated annealing over the local move vocabulary ({!Move}), priced
   incrementally by {!Model}.  Everything is a pure function of (seed,
   profile): the PRNG is an explicit splitmix64 stream seeded from the
   user seed and the procedure id, the schedule is fixed, and no wall
   clock or global randomness is consulted — so the result is
   byte-identical at any [-j] and across runs.

   The walk starts from the Greedy layout and the best-seen layout is
   returned, so under the chosen cost model annealing is never worse than
   Greedy. *)

module Rng = struct
  type t = { mutable s : int64 }

  let golden = 0x9E3779B97F4A7C15L

  let create seed = { s = Int64.of_int seed }

  let next t =
    t.s <- Int64.add t.s golden;
    let z = t.s in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
    Int64.logxor z (Int64.shift_right_logical z 31)

  (* uniform int in [0, n), n > 0 (modulo bias is irrelevant here) *)
  let int t n = Int64.to_int (Int64.rem (Int64.shift_right_logical (next t) 1) (Int64.of_int n))

  (* uniform float in [0, 1) from the top 53 bits *)
  let float t =
    Int64.to_float (Int64.shift_right_logical (next t) 11) *. (1.0 /. 9007199254740992.0)
end

let default_sweeps = 8

let align_proc ?(seed = 0) ?(sweeps = default_sweeps) ~arch
    ?(table = Cost_model.default_table) profile pid =
  let program = Ba_cfg.Profile.program profile in
  let proc = Ba_ir.Program.proc program pid in
  let start = Align.align_proc Align.Greedy ~arch ~table profile pid in
  let n = Ba_ir.Proc.n_blocks proc in
  let conds =
    Array.of_list
      (List.filter
         (fun b ->
           match (Ba_ir.Proc.block proc b).Ba_ir.Block.term with
           | Ba_ir.Term.Cond _ -> true
           | _ -> false)
         (List.init n Fun.id))
  in
  if n <= 2 && Array.length conds = 0 then start
  else begin
    let visits b = Ba_cfg.Profile.visits profile pid b in
    let cond_counts b = Ba_cfg.Profile.cond_counts profile pid b in
    let model = Model.create ~arch ~table ~visits ~cond_counts proc start in
    (* one independent stream per (seed, procedure): procedure order and
       scheduling cannot perturb each other's walks *)
    let rng = Rng.create ((seed * 0x1000193) lxor (pid * 0x01000193) lxor 0x5DEECE66) in
    let best = ref (Model.decision model) in
    let best_cost = ref (Model.total model) in
    let cur_cost = ref !best_cost in
    let legs =
      [| None; Some Decision.Jump_on_true; Some Decision.Jump_on_false |]
    in
    let n_swaps = max 0 (n - 2) in
    let iters = sweeps * (n_swaps + (3 * Array.length conds)) in
    if iters > 0 then begin
      let t0 = 1.0 +. (!best_cost /. 8.0) in
      let t_min = 0.01 in
      let alpha = (t_min /. t0) ** (1.0 /. float_of_int iters) in
      let temp = ref t0 in
      for _ = 1 to iters do
        let mv =
          let n_conds = Array.length conds in
          let pick_force = n_conds > 0 && (n_swaps = 0 || Rng.int rng 4 = 0) in
          if pick_force then
            Move.Force (conds.(Rng.int rng n_conds), legs.(Rng.int rng 3))
          else Move.Swap (1 + Rng.int rng n_swaps)
        in
        let d = Model.delta model mv in
        let accept = d <= 0.0 || Rng.float rng < exp (-.d /. !temp) in
        if accept then begin
          Model.commit model mv;
          (* re-read the exact total: accumulating deltas would drift *)
          cur_cost := Model.total model;
          if !cur_cost < !best_cost then begin
            best_cost := !cur_cost;
            best := Model.decision model
          end
        end;
        temp := !temp *. alpha
      done
    end;
    !best
  end

let align_program ?seed ?sweeps ~arch ?table profile =
  let program = Ba_cfg.Profile.program profile in
  Array.init (Ba_ir.Program.n_procs program) (fun pid ->
      align_proc ?seed ?sweeps ~arch ?table profile pid)

let image ?seed ?sweeps ~arch ?table profile =
  let program = Ba_cfg.Profile.program profile in
  Image.build ~profile program (align_program ?seed ?sweeps ~arch ?table profile)
