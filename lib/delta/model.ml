open Ba_layout
open Ba_core

(* Incremental static cost.  The per-position [Layout_cost.site] values are
   cached; a local move re-lowers (via [Lower.term_at]) and re-prices only
   the positions whose cost the move can change:

   - [Force (b, _)] rewrites block [b]'s own lowering only — its window is
     the single position holding [b];
   - [Swap i] changes which blocks sit at positions [i] and [i+1] and the
     fall-through successor of position [i-1] — the window is
     [{i-1, i, i+1}].

   Positions outside the window keep their cached value, which stays
   bit-equal to a fresh re-lowering: [Layout_cost.site_cost] reads a
   position's own term and index but never assigned addresses, and the
   taken-direction predicate [taken_pos <= pos] is invariant outside the
   window (an adjacent swap moves a target between positions [i] and
   [i+1], which changes the comparison only for a branch sitting at
   position [i] — inside the window).  Cached terms may carry stale
   [taken_pos] numbers after later commits, but always on the same side of
   their own position, so every cached cost equals the freshly-lowered
   one.  The differential tests assert this equality per position. *)

type t = {
  proc : Ba_ir.Proc.t;
  arch : Cost_model.arch;
  table : Cost_model.table;
  visits : Ba_ir.Term.block_id -> int;
  cond_counts : Ba_ir.Term.block_id -> int * int;
  order : Ba_ir.Term.block_id array;
  pos : int array;
  neither : Decision.jump_leg option array;
  linear : Linear.t;  (* blocks mutated in place; [decision] field is a snapshot *)
  sites : Layout_cost.site array;
}

let relower t j =
  let b = t.order.(j) in
  let blk = Ba_ir.Proc.block t.proc b in
  let term =
    Lower.term_at ~cond_counts:t.cond_counts t.proc ~order:t.order ~pos:t.pos
      ~neither:t.neither j
  in
  t.linear.Linear.blocks.(j) <-
    { Linear.src = b; insns = blk.Ba_ir.Block.insns; term; addr = 0 };
  t.sites.(j) <-
    Layout_cost.site_cost ~arch:t.arch ~table:t.table ~visits:t.visits
      ~cond_counts:t.cond_counts t.linear j

let create ~arch ?(table = Cost_model.default_table) ~visits ~cond_counts proc
    (decision : Decision.t) =
  (match Decision.validate proc decision with
  | Error e -> invalid_arg ("Ba_delta.Model.create: " ^ e)
  | Ok () -> ());
  let linear = Lower.lower ~cond_counts proc decision in
  let n = Array.length decision.Decision.order in
  let t =
    {
      proc;
      arch;
      table;
      visits;
      cond_counts;
      order = Array.copy decision.Decision.order;
      pos = Decision.position decision;
      neither = Array.copy decision.Decision.neither;
      linear;
      sites = Array.make n Layout_cost.{
        s_straight = 0.0; s_cond = 0.0; s_uncond = 0.0; s_calls = 0.0;
        s_indirect = 0.0; s_returns = 0.0 };
    }
  in
  for j = 0 to n - 1 do
    t.sites.(j) <-
      Layout_cost.site_cost ~arch ~table ~visits ~cond_counts linear j
  done;
  t

let n_positions t = Array.length t.order

let decision t =
  Decision.of_order ~neither:(Array.copy t.neither) (Array.copy t.order)

(* Same fold as [Layout_cost.evaluate] followed by [branch_cost]'s
   subtraction, so the result is bit-equal to pricing a fresh lowering. *)
let total t =
  let straight = ref 0.0 in
  let cond = ref 0.0 in
  let uncond = ref 0.0 in
  let calls = ref 0.0 in
  let indirect = ref 0.0 in
  let returns = ref 0.0 in
  Array.iter
    (fun (s : Layout_cost.site) ->
      straight := !straight +. s.Layout_cost.s_straight;
      cond := !cond +. s.Layout_cost.s_cond;
      uncond := !uncond +. s.Layout_cost.s_uncond;
      calls := !calls +. s.Layout_cost.s_calls;
      indirect := !indirect +. s.Layout_cost.s_indirect;
      returns := !returns +. s.Layout_cost.s_returns)
    t.sites;
  let all = !straight +. !cond +. !uncond +. !calls +. !indirect +. !returns in
  all -. !straight

let branch_site (s : Layout_cost.site) =
  s.Layout_cost.s_cond +. s.Layout_cost.s_uncond +. s.Layout_cost.s_calls
  +. s.Layout_cost.s_indirect +. s.Layout_cost.s_returns

let site_values t = Array.map branch_site t.sites

let check_swap t i =
  let n = Array.length t.order in
  if i < 1 || i + 1 > n - 1 then
    invalid_arg
      (Printf.sprintf "Ba_delta.Model: swap(%d,%d) out of range (entry pinned, %d blocks)"
         i (i + 1) n)

let window t = function
  | Move.Swap i ->
    check_swap t i;
    [ i - 1; i; i + 1 ]
  | Move.Force (b, _) ->
    if b < 0 || b >= Array.length t.pos then
      invalid_arg "Ba_delta.Model: forced block out of range";
    [ t.pos.(b) ]

let apply_arrays t = function
  | Move.Swap i ->
    let a = t.order.(i) and b = t.order.(i + 1) in
    t.order.(i) <- b;
    t.order.(i + 1) <- a;
    t.pos.(a) <- i + 1;
    t.pos.(b) <- i
  | Move.Force (b, leg) -> t.neither.(b) <- leg

(* Apply [m], recompute its window, run [f], then restore arrays, blocks
   and sites exactly. *)
let with_move t m f =
  let w = window t m in
  let saved_leg =
    match m with Move.Force (b, _) -> Some t.neither.(b) | Move.Swap _ -> None
  in
  let saved =
    List.map (fun j -> (j, t.linear.Linear.blocks.(j), t.sites.(j))) w
  in
  apply_arrays t m;
  List.iter (relower t) w;
  let r = f w in
  (match (m, saved_leg) with
  | Move.Swap i, _ -> apply_arrays t (Move.Swap i)
  | Move.Force (b, _), Some leg -> t.neither.(b) <- leg
  | Move.Force _, None -> assert false);
  List.iter
    (fun (j, blk, s) ->
      t.linear.Linear.blocks.(j) <- blk;
      t.sites.(j) <- s)
    saved;
  r

let preview t m = with_move t m (fun _ -> total t)

let window_sum t w =
  List.fold_left (fun acc j -> acc +. branch_site t.sites.(j)) 0.0 w

let delta t m =
  let old_sum = window_sum t (window t m) in
  with_move t m (fun w -> window_sum t w) -. old_sum

let commit t m =
  let w = window t m in
  apply_arrays t m;
  List.iter (relower t) w
