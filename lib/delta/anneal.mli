(** Simulated-annealing layout search ([--algo=anneal]).

    A seeded random walk over the local move vocabulary ({!Move}: adjacent
    swaps and forced jump legs), priced incrementally by {!Model} under
    one architectural cost model.  Deterministic by construction — an
    explicit splitmix64 stream per (seed, procedure), a fixed geometric
    cooling schedule, no global state — so results are byte-identical at
    any [-j].  The walk starts from the Greedy layout and returns the best
    layout seen, so it is never worse than Greedy under the model. *)

val default_sweeps : int

val align_proc :
  ?seed:int ->
  ?sweeps:int ->
  arch:Ba_core.Cost_model.arch ->
  ?table:Ba_core.Cost_model.table ->
  Ba_cfg.Profile.t ->
  Ba_ir.Term.proc_id ->
  Ba_layout.Decision.t

val align_program :
  ?seed:int ->
  ?sweeps:int ->
  arch:Ba_core.Cost_model.arch ->
  ?table:Ba_core.Cost_model.table ->
  Ba_cfg.Profile.t ->
  Ba_layout.Decision.t array

val image :
  ?seed:int ->
  ?sweeps:int ->
  arch:Ba_core.Cost_model.arch ->
  ?table:Ba_core.Cost_model.table ->
  Ba_cfg.Profile.t ->
  Ba_layout.Image.t
(** Align every procedure and build the image, as {!Ba_core.Align.image}
    does for the deterministic algorithms. *)
