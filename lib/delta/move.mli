(** Local layout moves.

    The move vocabulary of every local search in the repo, identical to
    what {!Ba_verify.Audit} prices: an adjacent block swap
    ({!Ba_layout.Decision.swap_positions} of positions [i] and [i+1]) or a
    per-conditional lowering change ({!Ba_layout.Decision.with_neither} —
    jump-leg flip, jump elision, or forcing the neither-edge lowering). *)

type local =
  | Swap of int  (** swap layout positions [i] and [i+1]; [i >= 1] *)
  | Force of Ba_ir.Term.block_id * Ba_layout.Decision.jump_leg option
      (** set the conditional's forced jump leg ([None] = unforced) *)

type t = { proc : Ba_ir.Term.proc_id; m : local }

val swap : proc:Ba_ir.Term.proc_id -> int -> t
val force :
  proc:Ba_ir.Term.proc_id ->
  Ba_ir.Term.block_id ->
  Ba_layout.Decision.jump_leg option ->
  t

val apply_local : Ba_layout.Decision.t -> local -> Ba_layout.Decision.t

val apply : Ba_layout.Decision.t array -> t -> Ba_layout.Decision.t array
(** Copy-on-write: only the moved procedure's decision is replaced. *)

val inverse : Ba_layout.Decision.t array -> t -> t
(** The move undoing [t], relative to the decisions [t] would be applied
    to (a swap is self-inverse; a force restores the current leg). *)

val enumerate :
  ?cond_counts:(Ba_ir.Term.proc_id -> Ba_ir.Term.block_id -> int * int) ->
  Ba_ir.Program.t ->
  Ba_layout.Decision.t array ->
  t list
(** Every one-move neighbour of the layout, in (procedure, move-class)
    order — the same neighbourhood {!Ba_verify.Audit.check} walks. *)

val pp : Format.formatter -> t -> unit
