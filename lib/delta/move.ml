open Ba_layout

type local =
  | Swap of int
  | Force of Ba_ir.Term.block_id * Decision.jump_leg option

type t = { proc : Ba_ir.Term.proc_id; m : local }

let swap ~proc pos = { proc; m = Swap pos }
let force ~proc b leg = { proc; m = Force (b, leg) }

let apply_local (d : Decision.t) = function
  | Swap i -> Decision.swap_positions d i (i + 1)
  | Force (b, leg) -> Decision.with_neither d b leg

let apply decisions { proc; m } =
  let decisions = Array.copy decisions in
  decisions.(proc) <- apply_local decisions.(proc) m;
  decisions

let inverse decisions { proc; m } =
  match m with
  | Swap i -> { proc; m = Swap i }
  | Force (b, _) -> { proc; m = Force (b, decisions.(proc).Decision.neither.(b)) }

let pp ppf { proc; m } =
  match m with
  | Swap i -> Fmt.pf ppf "p%d:swap(%d,%d)" proc i (i + 1)
  | Force (b, None) -> Fmt.pf ppf "p%d:elide(b%d)" proc b
  | Force (b, Some leg) -> Fmt.pf ppf "p%d:force(b%d,%s)" proc b (Decision.leg_name leg)

(* The audit's move vocabulary, one list per procedure: every adjacent
   swap that keeps the entry pinned, and every per-conditional lowering
   move (flip / elide for a conditional that carries an inserted jump,
   force-either-leg for one that does not).  Enumerated against the
   lowering the decision actually produces, so the move set matches
   [Ba_verify.Audit]'s exactly. *)
let enumerate ?cond_counts program (decisions : Decision.t array) =
  let moves = ref [] in
  let n_procs = Array.length decisions in
  for proc = n_procs - 1 downto 0 do
    let p = Ba_ir.Program.proc program proc in
    let cond_counts =
      match cond_counts with
      | Some f -> Some (fun b -> f proc b)
      | None -> None
    in
    let linear = Lower.lower ?cond_counts p decisions.(proc) in
    let n = Array.length linear.Linear.blocks in
    let per_cond = ref [] in
    Array.iter
      (fun (lb : Linear.lblock) ->
        let b = lb.Linear.src in
        match lb.Linear.term with
        | Linear.Lcond { taken_on; inserted_jump = Some _; _ } ->
          let flipped =
            if taken_on then Decision.Jump_on_true else Decision.Jump_on_false
          in
          per_cond :=
            force ~proc b None :: force ~proc b (Some flipped) :: !per_cond
        | Linear.Lcond { inserted_jump = None; _ } ->
          per_cond :=
            force ~proc b (Some Decision.Jump_on_false)
            :: force ~proc b (Some Decision.Jump_on_true)
            :: !per_cond
        | _ -> ())
      linear.Linear.blocks;
    moves := !per_cond @ !moves;
    for i = n - 2 downto 1 do
      moves := swap ~proc i :: !moves
    done
  done;
  !moves
