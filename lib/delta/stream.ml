open Ba_trace

(* Layout-independent step records, extracted from one replay-shaped walk
   of the trace over the program's original image.

   A {e site} is a semantic block, numbered [pbase.(proc) + block] — the
   global position the block has in the identity layout, which is also
   layout-invariant.  One record per executed step carries the site and a
   tag naming what the step consumed ([Plain] steps — jumps, fall-throughs
   — consume nothing); switch/vcall selections and the popped frame of
   every return ride in side arrays, in execution order.  Given any
   candidate layout's geometry, the exact event sequence
   {!Ba_trace.Replay.run} would produce on that layout is a deterministic
   function of these records — that is what {!Eval} exploits. *)

let tag_plain = 0
let tag_cond_false = 1
let tag_cond_true = 2
let tag_switch = 3
let tag_call = 4
let tag_vcall = 5
let tag_ret = 6
let tag_halt = 7

type t = {
  program : Ba_ir.Program.t;
  pbase : int array;  (** first site of each procedure *)
  n_sites : int;
  site_proc : int array;
  site_block : int array;
  opcode : int array;  (** semantic terminator class per site (Flat codes) *)
  n_steps : int;
  recs : int array;  (** (site lsl 3) lor tag, per step *)
  choices : int array;  (** switch/vcall selected indices, in order *)
  ret_frames : int array;  (** per return: pushing call site, or -1 *)
  cond_recs : int array;  (** (site lsl 1) lor outcome, conditionals only *)
  n_exec : int array;  (** per site *)
  n_true : int array;  (** semantic [true] outcomes, per conditional site *)
  n_false : int array;
  n_rets_to : int array;  (** frames pushed at this call site and popped *)
  n_underflow : int;  (** returns executed with an empty frame stack *)
  max_depth : int;  (** deepest call-stack the run reached *)
}

module Grow = struct
  type t = { mutable a : int array; mutable len : int }

  let create () = { a = Array.make 1024 0; len = 0 }

  let push t v =
    if t.len = Array.length t.a then begin
      let a = Array.make (2 * t.len) 0 in
      Array.blit t.a 0 a 0 t.len;
      t.a <- a
    end;
    t.a.(t.len) <- v;
    t.len <- t.len + 1

  let finish t = Array.sub t.a 0 t.len
end

(* Mirrors [Replay.run]'s control flow over the identity layout, where
   global position = site.  Any drift from the replayer here would show up
   as a penalty mismatch in the differential wall. *)
let build program (tr : Trace.t) =
  let flat = Flat.of_image (Ba_layout.Image.original program) in
  let opcode = flat.Flat.opcode in
  let fa = flat.Flat.a and fb = flat.Flat.b and fc = flat.Flat.c in
  let succ = flat.Flat.succ in
  let pbase = flat.Flat.pbase in
  let n_sites = Array.length opcode in
  let site_proc = Array.make n_sites 0 in
  let site_block = Array.make n_sites 0 in
  let nprocs = Array.length pbase in
  for p = 0 to nprocs - 1 do
    let hi = if p + 1 < nprocs then pbase.(p + 1) else n_sites in
    for s = pbase.(p) to hi - 1 do
      site_proc.(s) <- p;
      site_block.(s) <- s - pbase.(p)
    done
  done;
  let recs = Grow.create () in
  let choices = Grow.create () in
  let ret_frames = Grow.create () in
  let cond_recs = Grow.create () in
  let n_exec = Array.make n_sites 0 in
  let n_true = Array.make n_sites 0 in
  let n_false = Array.make n_sites 0 in
  let n_rets_to = Array.make n_sites 0 in
  let n_underflow = ref 0 in
  let max_depth = ref 0 in
  (* decision cursors, as in Replay.run *)
  let conds = tr.Trace.conds in
  let cond_i = ref 0 in
  let next_outcome () =
    let i = !cond_i in
    if i >= tr.Trace.n_conds then
      failwith "Ba_delta.Stream: trace exhausted (conditional outcomes)";
    cond_i := i + 1;
    (Char.code (Bytes.unsafe_get conds (i lsr 3)) lsr (i land 7)) land 1 = 1
  in
  let choice_bytes = tr.Trace.choices in
  let choices_len = Bytes.length choice_bytes in
  let choice_off = ref 0 in
  let next_choice () =
    let off = ref !choice_off in
    let shift = ref 0 and acc = ref 0 and fin = ref false in
    while not !fin do
      if !off >= choices_len then
        failwith "Ba_delta.Stream: trace exhausted (switch/vcall indices)";
      let byte = Char.code (Bytes.unsafe_get choice_bytes !off) in
      incr off;
      acc := !acc lor ((byte land 0x7F) lsl !shift);
      shift := !shift + 7;
      if byte land 0x80 = 0 then fin := true
    done;
    choice_off := !off;
    !acc
  in
  (* frame stack of (call site, resume site) *)
  let cap = ref 64 in
  let s_site = ref (Array.make !cap 0) in
  let s_res = ref (Array.make !cap 0) in
  let sp = ref 0 in
  let push site resume =
    if !sp = !cap then begin
      let cap' = !cap * 2 in
      let a = Array.make cap' 0 and r = Array.make cap' 0 in
      Array.blit !s_site 0 a 0 !cap;
      Array.blit !s_res 0 r 0 !cap;
      s_site := a;
      s_res := r;
      cap := cap'
    end;
    !s_site.(!sp) <- site;
    !s_res.(!sp) <- resume;
    incr sp;
    if !sp > !max_depth then max_depth := !sp
  in
  let budget = tr.Trace.steps in
  let steps = ref 0 in
  let g = ref flat.Flat.entry in
  let running = ref true in
  while !running && !steps < budget do
    let gp = !g in
    incr steps;
    n_exec.(gp) <- n_exec.(gp) + 1;
    let op = opcode.(gp) in
    if op = Flat.onone then begin
      Grow.push recs ((gp lsl 3) lor tag_plain);
      g := gp + 1
    end
    else if op = Flat.ocond then begin
      let outcome = next_outcome () in
      Grow.push recs ((gp lsl 3) lor (if outcome then tag_cond_true else tag_cond_false));
      Grow.push cond_recs ((gp lsl 1) lor (if outcome then 1 else 0));
      if outcome then n_true.(gp) <- n_true.(gp) + 1
      else n_false.(gp) <- n_false.(gp) + 1;
      if outcome = (fb.(gp) = 1) then g := fa.(gp)
      else begin
        let j = fc.(gp) in
        if j < 0 then g := gp + 1 else g := j
      end
    end
    else if op = Flat.ojump then begin
      Grow.push recs ((gp lsl 3) lor tag_plain);
      g := fa.(gp)
    end
    else if op = Flat.oswitch then begin
      let k = next_choice () in
      Grow.push recs ((gp lsl 3) lor tag_switch);
      Grow.push choices k;
      g := succ.(fa.(gp) + k)
    end
    else if op = Flat.ocall then begin
      Grow.push recs ((gp lsl 3) lor tag_call);
      push gp fc.(gp);
      g := fa.(gp)
    end
    else if op = Flat.ovcall then begin
      let k = next_choice () in
      Grow.push recs ((gp lsl 3) lor tag_vcall);
      Grow.push choices k;
      push gp fc.(gp);
      g := succ.(fa.(gp) + k)
    end
    else if op = Flat.oret then begin
      Grow.push recs ((gp lsl 3) lor tag_ret);
      if !sp = 0 then begin
        Grow.push ret_frames (-1);
        incr n_underflow;
        running := false
      end
      else begin
        decr sp;
        let f = !s_site.(!sp) in
        Grow.push ret_frames f;
        n_rets_to.(f) <- n_rets_to.(f) + 1;
        g := !s_res.(!sp)
      end
    end
    else begin
      (* ohalt *)
      Grow.push recs ((gp lsl 3) lor tag_halt);
      running := false
    end
  done;
  {
    program;
    pbase;
    n_sites;
    site_proc;
    site_block;
    opcode = Array.copy opcode;
    n_steps = !steps;
    recs = Grow.finish recs;
    choices = Grow.finish choices;
    ret_frames = Grow.finish ret_frames;
    cond_recs = Grow.finish cond_recs;
    n_exec;
    n_true;
    n_false;
    n_rets_to;
    n_underflow = !n_underflow;
    max_depth = !max_depth;
  }
