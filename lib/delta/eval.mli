(** Simulator-exact incremental candidate pricing.

    One {!Stream.build} pass over the recorded trace makes every later
    candidate evaluation a function of the candidate's geometry alone.
    {!cost} then returns, per requested architecture, {e exactly} the
    integer penalty cycles {!Ba_sim.Runner.simulate} would report for a
    full replay of the trace on that layout ([Bep.bep]) — the differential
    wall in [test_delta.ml] enforces bit equality.

    Static rules are priced by closed form over per-site counts; table and
    adaptive predictors replay only the conditional-direction substream,
    with cached / entry-scoped fast paths when the move left predictor
    inputs unchanged; the BTB synthesises the exact event stream into a
    real {!Ba_sim.Bep.t}.  {!stats} reports which paths ran. *)

type spec =
  | Fallthrough
  | Btfnt
  | Likely  (** hint bits rebuilt per candidate image, as the gap study does *)
  | Pht_direct of { entries : int }
  | Pht_gshare of { entries : int; history_bits : int }
  | Pht_global of { history_bits : int }
  | Pht_local of { history_bits : int; branch_entries : int }
  | Btb of { entries : int; assoc : int }

val spec_label : spec -> string

val spec_of_model : Ba_core.Cost_model.arch -> spec
(** Each cost-model architecture's canonical simulated configuration —
    the same mapping the optimality-gap study uses (direct PHT 4096, BTB
    256/4-way). *)

val to_arch :
  spec -> image:Ba_layout.Image.t -> profile:Ba_cfg.Profile.t -> Ba_sim.Bep.arch
(** The [Bep] architecture a full simulation of [image] would use — what
    the differential wall runs the reference side with. *)

type stats = {
  mutable closed_form : int;  (** static-rule closed-form evaluations *)
  mutable cond_cached : int;  (** table substream: cached base reused *)
  mutable cond_scoped : int;  (** table substream: entry-scoped dual replay *)
  mutable cond_replayed : int;  (** table substream: full replay *)
  mutable machine_runs : int;  (** BTB synthesised-event machine runs *)
  mutable ras_substreams : int;  (** call/return substream replays *)
}

type t

val create :
  ?penalties:Ba_sim.Bep.penalties ->
  ?ras_depth:int ->
  ?scoped_max:int ->
  specs:spec array ->
  Ba_cfg.Profile.t ->
  Ba_trace.Trace.t ->
  Ba_layout.Decision.t array ->
  t
(** [create ~specs profile trace base] replays the trace once (shape only)
    and prices the base layout's conditional substreams so later
    candidates near [base] hit the cached paths.  Defaults: the paper's
    penalties (1/4), a 32-entry return stack, and entry-scoped direct-PHT
    replay for at most [scoped_max = 32] changed sites. *)

val specs : t -> spec array
val n_steps : t -> int
val stats : t -> stats

val cost : t -> Ba_layout.Decision.t array -> int array
(** Exact penalty cycles of the candidate layout, per spec — bit-equal to
    [Bep.bep] after [Runner.simulate ~trace] on the candidate's image. *)

val cost_arch : t -> int -> Ba_layout.Decision.t array -> int
(** [cost] for the single spec at the given index. *)

val delta : t -> Ba_layout.Decision.t array -> Move.t -> int array
(** Per-spec cost change of applying the move: [cost after - cost before]. *)
