(** Incremental static cost evaluation for one procedure.

    Holds a layout decision plus the cached per-position
    {!Ba_core.Layout_cost.site} values of its lowering, and re-prices a
    local move ({!Move.local}) by re-lowering only the affected window —
    O(1) positions instead of a full {!Ba_layout.Lower.lower} pass.

    Exactness contract: {!total} and {!preview} are bit-equal to
    {!Ba_core.Layout_cost.branch_cost} of the corresponding freshly
    lowered layout, {!site_values} is bit-equal to
    {!Ba_core.Layout_cost.per_block}, and {!delta} equals the sum of the
    per-position differences over the move's window (positions outside the
    window are untouched bit-for-bit).  The move-algebra tests in
    [test_delta.ml] enforce all three. *)

type t

val create :
  arch:Ba_core.Cost_model.arch ->
  ?table:Ba_core.Cost_model.table ->
  visits:(Ba_ir.Term.block_id -> int) ->
  cond_counts:(Ba_ir.Term.block_id -> int * int) ->
  Ba_ir.Proc.t ->
  Ba_layout.Decision.t ->
  t
(** The decision is copied; the model never aliases the caller's arrays.
    Raises [Invalid_argument] on an invalid decision. *)

val n_positions : t -> int

val decision : t -> Ba_layout.Decision.t
(** The current (post-commit) decision, freshly allocated. *)

val total : t -> float
(** Exact branch cost of the current layout under the model's
    architecture — bit-equal to {!Ba_core.Layout_cost.branch_cost}. *)

val site_values : t -> float array
(** Per-position branch cycles — bit-equal to
    {!Ba_core.Layout_cost.per_block}. *)

val preview : t -> Move.local -> float
(** Branch cost of the layout after the move, without committing it.
    Raises [Invalid_argument] for a swap touching the pinned entry or
    falling outside the layout. *)

val delta : t -> Move.local -> float
(** Cost change of the move: the sum over the affected window of
    (new − old) per-position branch cycles.  Additive across moves with
    disjoint windows. *)

val commit : t -> Move.local -> unit
(** Apply the move to the model's layout. *)
