(** Layout-independent execution summaries.

    One replay-shaped pass over the recorded trace (driven on the
    program's identity layout, where global position = site id) yields a
    per-step record stream plus per-site counts.  Everything here is a
    function of the program and the semantic trace only — no candidate
    layout's addresses appear — so one [build] serves every layout
    {!Eval} prices. *)

(** Step tags.  [tag_plain] covers jumps, fall-throughs and
    terminator-free steps. *)

val tag_plain : int
val tag_cond_false : int
val tag_cond_true : int
val tag_switch : int
val tag_call : int
val tag_vcall : int
val tag_ret : int
val tag_halt : int

type t = {
  program : Ba_ir.Program.t;
  pbase : int array;  (** first site of each procedure *)
  n_sites : int;
  site_proc : int array;
  site_block : int array;
  opcode : int array;  (** semantic terminator class per site (Flat codes) *)
  n_steps : int;
  recs : int array;  (** [(site lsl 3) lor tag], per executed step *)
  choices : int array;  (** switch/vcall selected indices, in order *)
  ret_frames : int array;  (** per return: pushing call site, or [-1] *)
  cond_recs : int array;  (** [(site lsl 1) lor outcome], conditionals only *)
  n_exec : int array;  (** per site *)
  n_true : int array;  (** semantic [true] outcomes, per conditional site *)
  n_false : int array;
  n_rets_to : int array;  (** frames pushed at this call site and popped *)
  n_underflow : int;  (** returns executed with an empty frame stack *)
  max_depth : int;  (** deepest call-stack depth the run reached *)
}

val build : Ba_ir.Program.t -> Ba_trace.Trace.t -> t
(** Walks the trace once, mirroring {!Ba_trace.Replay.run}'s control flow
    exactly (budget, early halt, frame stack).  Raises [Failure] on a
    truncated trace, as the replayer would. *)
