open Ba_layout
open Ba_trace
open Ba_predict
open Ba_sim

(* Simulator-exact candidate pricing.

   [Stream.build] runs the replay walk once; after that, pricing a candidate
   layout is a function of its geometry only (block addresses, operand
   values, branch senses).  Per architecture family:

   - {b static rules} (fallthrough / BTFNT / likely): every prediction is a
     pure per-site function of the candidate geometry, so the whole cost is
     a closed form over per-site counts — no replay at all;
   - {b tables / adaptive} (PHT direct, gshare, GAg, PAg): misfetch traffic
     stays closed-form; only the conditional direction stream is
     history-dependent, and that substream is replayed against a real
     predictor instance.  Three fast paths keep this scoped: if no executed
     conditional changed its branch pc or sense, the cached base penalty is
     exact; for GAg the index ignores the pc entirely so only sense changes
     matter; for the direct-mapped PHT a small set of changed sites touches
     a small set of table entries, and a dual-table replay over just those
     entries corrects the cached total;
   - {b BTB}: every event kind reads and trains shared associative state,
     so the exact event stream the replayer would produce on the candidate
     is synthesised from the step records and fed to a real {!Bep.t}.

   The differential wall in [test_delta.ml] holds every path to bit
   equality with [Runner.simulate]. *)

type spec =
  | Fallthrough
  | Btfnt
  | Likely
  | Pht_direct of { entries : int }
  | Pht_gshare of { entries : int; history_bits : int }
  | Pht_global of { history_bits : int }
  | Pht_local of { history_bits : int; branch_entries : int }
  | Btb of { entries : int; assoc : int }

let spec_label = function
  | Fallthrough -> "fallthrough"
  | Btfnt -> "btfnt"
  | Likely -> "likely"
  | Pht_direct { entries } -> Printf.sprintf "pht%d" entries
  | Pht_gshare { entries; history_bits } ->
    Printf.sprintf "gshare%d/%d" entries history_bits
  | Pht_global { history_bits } -> Printf.sprintf "gag%d" history_bits
  | Pht_local { history_bits; branch_entries } ->
    Printf.sprintf "pag%d/%d" history_bits branch_entries
  | Btb { entries; assoc } -> Printf.sprintf "btb%d/%d" entries assoc

(* The same mapping as [Ba_bound.Analyze.arch_of_model] / the gap study:
   each cost-model architecture's canonical simulated configuration. *)
let spec_of_model = function
  | Ba_core.Cost_model.Fallthrough -> Fallthrough
  | Ba_core.Cost_model.Btfnt -> Btfnt
  | Ba_core.Cost_model.Likely -> Likely
  | Ba_core.Cost_model.Pht -> Pht_direct { entries = 4096 }
  | Ba_core.Cost_model.Btb -> Btb { entries = 256; assoc = 4 }

let to_arch spec ~image ~profile =
  match spec with
  | Fallthrough -> Bep.Static_fallthrough
  | Btfnt -> Bep.Static_btfnt
  | Likely -> Bep.Static_likely (Likely_bits.build image profile)
  | Pht_direct { entries } -> Bep.Pht_direct { entries }
  | Pht_gshare { entries; history_bits } -> Bep.Pht_gshare { entries; history_bits }
  | Pht_global { history_bits } -> Bep.Pht_global { history_bits }
  | Pht_local { history_bits; branch_entries } ->
    Bep.Pht_local { history_bits; branch_entries }
  | Btb { entries; assoc } -> Bep.Btb_arch { entries; assoc }

type stats = {
  mutable closed_form : int;
  mutable cond_cached : int;
  mutable cond_scoped : int;
  mutable cond_replayed : int;
  mutable machine_runs : int;
  mutable ras_substreams : int;
}

(* Candidate geometry: everything layout-dependent the penalty model
   reads, resolved per site. *)
type geom = {
  flat : Flat.t;
  to_g : int array;  (* site -> candidate global position *)
  bpc : int array;  (* site -> branch pc (addr + insns) *)
}

type t = {
  stream : Stream.t;
  profile : Ba_cfg.Profile.t;
  specs : spec array;
  penalties : Bep.penalties;
  ras_depth : int;
  ras_risky : bool;  (* deeper calls than the stack: pops can be wrong *)
  scoped_max : int;
  base_geom : geom;
  base_cond : int array;  (* cached cond penalty per table spec, else 0 *)
  stats : stats;
}

let geom_of ~stream:st ~profile decisions =
  let program = st.Stream.program in
  let image = Image.build ~profile program decisions in
  let flat = Flat.of_image image in
  let n = st.Stream.n_sites in
  let to_g = Array.make n 0 in
  let bpc = Array.make n 0 in
  Array.iteri
    (fun p (d : Decision.t) ->
      let pos = Decision.position d in
      let base = st.Stream.pbase.(p) in
      Array.iteri (fun b q -> to_g.(base + b) <- base + q) pos)
    decisions;
  let addr = flat.Flat.addr and insns = flat.Flat.insns in
  for s = 0 to n - 1 do
    let g = to_g.(s) in
    bpc.(s) <- addr.(g) + insns.(g)
  done;
  { flat; to_g; bpc }

let make_geom t decisions = geom_of ~stream:t.stream ~profile:t.profile decisions

(* Misfetch / mispredict counts from everything except conditional-branch
   direction predictions and returns: direct jumps, inserted jumps after a
   falling-through conditional, calls, return-leg jumps, switch and vcall
   targets.  Closed form for the Rule/Table/Adaptive families ([Bep]
   treats them identically here); the Buffer family never uses this. *)
let noncond_counts t geom =
  let st = t.stream in
  let fl = geom.flat in
  let mf = ref 0 and mp = ref 0 in
  for s = 0 to st.Stream.n_sites - 1 do
    let n = st.Stream.n_exec.(s) in
    if n > 0 then begin
      let g = geom.to_g.(s) in
      let op = fl.Flat.opcode.(g) in
      if op = Flat.ojump then mf := !mf + n
      else if op = Flat.ocond then begin
        if fl.Flat.c.(g) >= 0 then
          (* inserted jump: taken once per fall-through execution *)
          mf :=
            !mf
            + (if fl.Flat.b.(g) = 1 then st.Stream.n_false.(s)
               else st.Stream.n_true.(s))
      end
      else if op = Flat.oswitch then mp := !mp + n
      else if op = Flat.ocall then begin
        mf := !mf + n;
        if fl.Flat.b.(g) >= 0 then mf := !mf + st.Stream.n_rets_to.(s)
      end
      else if op = Flat.ovcall then begin
        mp := !mp + n;
        if fl.Flat.b.(g) >= 0 then mf := !mf + st.Stream.n_rets_to.(s)
      end
    end
  done;
  (!mf, !mp)

(* Return mispredicts.  The replayer pushes the call's fall-through pc and
   resumes exactly there, so while the semantic call depth never exceeds
   the stack depth, every non-underflow pop is correct and every underflow
   pops [None]: the count is just [n_underflow].  Deeper runs can wrap the
   circular stack, so the call/return substream is replayed against a real
   {!Return_stack.t} under the candidate geometry. *)
let ret_mp_count t geom =
  let st = t.stream in
  if not t.ras_risky then st.Stream.n_underflow
  else begin
    t.stats.ras_substreams <- t.stats.ras_substreams + 1;
    let fl = geom.flat in
    let ras = Return_stack.create ~depth:t.ras_depth in
    let mp = ref 0 in
    let ri = ref 0 in
    Array.iter
      (fun r ->
        let tag = r land 7 in
        if tag = Stream.tag_call || tag = Stream.tag_vcall then
          Return_stack.push ras (geom.bpc.(r lsr 3) + 1)
        else if tag = Stream.tag_ret then begin
          let f = st.Stream.ret_frames.(!ri) in
          incr ri;
          let target =
            if f < 0 then 0
            else begin
              let gf = geom.to_g.(f) in
              let jpc = fl.Flat.b.(gf) in
              if jpc >= 0 then jpc else fl.Flat.addr.(fl.Flat.c.(gf))
            end
          in
          match Return_stack.pop ras with
          | Some a when a = target -> ()
          | Some _ | None -> incr mp
        end)
      st.Stream.recs;
    !mp
  end

(* Conditional penalties under a static rule: the prediction is a pure
   per-site function of the candidate geometry, so each site contributes a
   closed form of its taken / fall-through execution counts. *)
let rule_cond_counts t geom spec =
  let st = t.stream in
  let fl = geom.flat in
  let mf = ref 0 and mp = ref 0 in
  for s = 0 to st.Stream.n_sites - 1 do
    if st.Stream.opcode.(s) = Flat.ocond && st.Stream.n_exec.(s) > 0 then begin
      let g = geom.to_g.(s) in
      let sense = fl.Flat.b.(g) = 1 in
      let n_taken = if sense then st.Stream.n_true.(s) else st.Stream.n_false.(s) in
      let n_fall = st.Stream.n_exec.(s) - n_taken in
      let predict_taken =
        match spec with
        | Fallthrough -> false
        | Btfnt -> fl.Flat.addr.(fl.Flat.a.(g)) <= geom.bpc.(s)
        | Likely ->
          (* = the Likely_bits hint the simulator would build for this
             candidate image *)
          let n_true, n_false =
            Ba_cfg.Profile.cond_counts t.profile st.Stream.site_proc.(s)
              st.Stream.site_block.(s)
          in
          n_true >= n_false = sense
        | _ -> assert false
      in
      if predict_taken then begin
        mf := !mf + n_taken;
        mp := !mp + n_fall
      end
      else mp := !mp + n_taken
    end
  done;
  (!mf, !mp)

(* Full conditional-substream replay against a real predictor. *)
let replay_cond t geom ~predict ~update =
  let fl = geom.flat in
  let mfp = t.penalties.Bep.misfetch and mpp = t.penalties.Bep.mispredict in
  let pen = ref 0 in
  Array.iter
    (fun cr ->
      let s = cr lsr 1 in
      let outcome = cr land 1 = 1 in
      let taken = outcome = (fl.Flat.b.(geom.to_g.(s)) = 1) in
      let pc = geom.bpc.(s) in
      let predicted = predict ~pc in
      update ~pc ~taken;
      if predicted = taken then begin
        if taken then pen := !pen + mfp
      end
      else pen := !pen + mpp)
    t.stream.Stream.cond_recs;
  !pen

let full_cond_penalty t geom spec =
  match spec with
  | Pht_direct { entries } ->
    let p = Pht.create_direct ~entries in
    replay_cond t geom ~predict:(Pht.predict p) ~update:(Pht.update p)
  | Pht_gshare { entries; history_bits } ->
    let p = Pht.create_gshare ~entries ~history_bits in
    replay_cond t geom ~predict:(Pht.predict p) ~update:(Pht.update p)
  | Pht_global { history_bits } ->
    let p = Two_level.create_global ~history_bits () in
    replay_cond t geom ~predict:(Two_level.predict p) ~update:(Two_level.update p)
  | Pht_local { history_bits; branch_entries } ->
    let p = Two_level.create_local ~history_bits ~branch_entries () in
    replay_cond t geom ~predict:(Two_level.predict p) ~update:(Two_level.update p)
  | Fallthrough | Btfnt | Likely | Btb _ -> assert false

(* Executed conditional sites whose branch pc or sense differ from the
   base geometry — the only sites that can perturb table state. *)
let changed_conds t geom ~ignore_pc =
  let st = t.stream in
  let fl = geom.flat and bfl = t.base_geom.flat in
  let acc = ref [] in
  for s = st.Stream.n_sites - 1 downto 0 do
    if st.Stream.opcode.(s) = Flat.ocond && st.Stream.n_exec.(s) > 0 then begin
      let sense = fl.Flat.b.(geom.to_g.(s)) in
      let bsense = bfl.Flat.b.(t.base_geom.to_g.(s)) in
      if
        sense <> bsense
        || ((not ignore_pc) && geom.bpc.(s) <> t.base_geom.bpc.(s))
      then acc := s :: !acc
    end
  done;
  !acc

(* Direct-mapped PHT, scoped: the changed sites index a small entry set E
   (under both geometries); all other entries see identical access streams
   in base and candidate, so penalty(cand) = cached_base - base(E) +
   cand(E), with both E-restricted replays sharing one pass. *)
let scoped_direct_penalty t geom ~entries changed cached_base =
  let in_e = Array.make entries false in
  List.iter
    (fun s ->
      in_e.(Pht.direct_index ~entries ~pc:t.base_geom.bpc.(s)) <- true;
      in_e.(Pht.direct_index ~entries ~pc:geom.bpc.(s)) <- true)
    changed;
  let base_t = Array.make entries (Counter2.initial :> int) in
  let cand_t = Array.make entries (Counter2.initial :> int) in
  let bfl = t.base_geom.flat and fl = geom.flat in
  let mfp = t.penalties.Bep.misfetch and mpp = t.penalties.Bep.mispredict in
  let base_pen = ref 0 and cand_pen = ref 0 in
  Array.iter
    (fun cr ->
      let s = cr lsr 1 in
      let outcome = cr land 1 = 1 in
      let bi = Pht.direct_index ~entries ~pc:t.base_geom.bpc.(s) in
      if in_e.(bi) then begin
        let taken = outcome = (bfl.Flat.b.(t.base_geom.to_g.(s)) = 1) in
        let c = Counter2.of_int base_t.(bi) in
        let predicted = Counter2.predict c in
        base_t.(bi) <- (Counter2.update c ~taken :> int);
        if predicted = taken then begin
          if taken then base_pen := !base_pen + mfp
        end
        else base_pen := !base_pen + mpp
      end;
      let ci = Pht.direct_index ~entries ~pc:geom.bpc.(s) in
      if in_e.(ci) then begin
        let taken = outcome = (fl.Flat.b.(geom.to_g.(s)) = 1) in
        let c = Counter2.of_int cand_t.(ci) in
        let predicted = Counter2.predict c in
        cand_t.(ci) <- (Counter2.update c ~taken :> int);
        if predicted = taken then begin
          if taken then cand_pen := !cand_pen + mfp
        end
        else cand_pen := !cand_pen + mpp
      end)
    t.stream.Stream.cond_recs;
  cached_base - !base_pen + !cand_pen

let table_cond_penalty t geom ix spec =
  let cached = t.base_cond.(ix) in
  match spec with
  | Pht_global _ ->
    (* the GAg index is history-only: branch addresses are invisible *)
    if changed_conds t geom ~ignore_pc:true = [] then begin
      t.stats.cond_cached <- t.stats.cond_cached + 1;
      cached
    end
    else begin
      t.stats.cond_replayed <- t.stats.cond_replayed + 1;
      full_cond_penalty t geom spec
    end
  | Pht_direct { entries } -> (
    match changed_conds t geom ~ignore_pc:false with
    | [] ->
      t.stats.cond_cached <- t.stats.cond_cached + 1;
      cached
    | changed when List.compare_length_with changed t.scoped_max <= 0 ->
      t.stats.cond_scoped <- t.stats.cond_scoped + 1;
      scoped_direct_penalty t geom ~entries changed cached
    | _ ->
      t.stats.cond_replayed <- t.stats.cond_replayed + 1;
      full_cond_penalty t geom spec)
  | Pht_gshare _ | Pht_local _ ->
    (* a single pc change perturbs shared history / shared counters for
       every later access: all or nothing *)
    if changed_conds t geom ~ignore_pc:false = [] then begin
      t.stats.cond_cached <- t.stats.cond_cached + 1;
      cached
    end
    else begin
      t.stats.cond_replayed <- t.stats.cond_replayed + 1;
      full_cond_penalty t geom spec
    end
  | Fallthrough | Btfnt | Likely | Btb _ -> assert false

(* BTB: synthesise the exact event stream the replayer would produce on
   the candidate layout and feed a real [Bep.t]. *)
let machine_run t geom arch =
  t.stats.machine_runs <- t.stats.machine_runs + 1;
  let sim =
    Bep.create ~penalties:t.penalties ~return_stack_depth:t.ras_depth arch
  in
  let st = t.stream and fl = geom.flat in
  let scratch = { Ba_exec.Event.pc = 0; target = 0; kind = Ba_exec.Event.Uncond } in
  let cond_payload = { Ba_exec.Event.pc = 0; target = 0;
                       kind = Ba_exec.Event.Cond { taken = false; taken_target = 0 } } in
  let emit pc target kind =
    scratch.Ba_exec.Event.pc <- pc;
    scratch.Ba_exec.Event.target <- target;
    scratch.Ba_exec.Event.kind <- kind;
    Bep.on_event sim scratch
  in
  let emit_cond pc target ~taken ~taken_target =
    (match cond_payload.Ba_exec.Event.kind with
    | Ba_exec.Event.Cond c ->
      c.taken <- taken;
      c.taken_target <- taken_target
    | _ -> assert false);
    cond_payload.Ba_exec.Event.pc <- pc;
    cond_payload.Ba_exec.Event.target <- target;
    Bep.on_event sim cond_payload
  in
  let ci = ref 0 and ri = ref 0 in
  Array.iter
    (fun r ->
      let s = r lsr 3 in
      let tag = r land 7 in
      let g = geom.to_g.(s) in
      let pc = geom.bpc.(s) in
      if tag = Stream.tag_plain then begin
        if fl.Flat.opcode.(g) = Flat.ojump then
          emit pc fl.Flat.addr.(fl.Flat.a.(g)) Ba_exec.Event.Uncond
      end
      else if tag = Stream.tag_cond_true || tag = Stream.tag_cond_false then begin
        let outcome = tag = Stream.tag_cond_true in
        let taken = outcome = (fl.Flat.b.(g) = 1) in
        let tt = fl.Flat.addr.(fl.Flat.a.(g)) in
        if taken then emit_cond pc tt ~taken:true ~taken_target:tt
        else begin
          emit_cond pc (pc + 1) ~taken:false ~taken_target:tt;
          let j = fl.Flat.c.(g) in
          if j >= 0 then emit (pc + 1) fl.Flat.addr.(j) Ba_exec.Event.Uncond
        end
      end
      else if tag = Stream.tag_switch then begin
        let k = st.Stream.choices.(!ci) in
        incr ci;
        emit pc fl.Flat.addr.(fl.Flat.succ.(fl.Flat.a.(g) + k))
          Ba_exec.Event.Indirect_jump
      end
      else if tag = Stream.tag_call then
        emit pc fl.Flat.addr.(fl.Flat.a.(g)) Ba_exec.Event.Call
      else if tag = Stream.tag_vcall then begin
        let k = st.Stream.choices.(!ci) in
        incr ci;
        emit pc fl.Flat.addr.(fl.Flat.succ.(fl.Flat.a.(g) + k))
          Ba_exec.Event.Indirect_call
      end
      else if tag = Stream.tag_ret then begin
        let f = st.Stream.ret_frames.(!ri) in
        incr ri;
        if f < 0 then emit pc 0 Ba_exec.Event.Ret
        else begin
          let gf = geom.to_g.(f) in
          let jpc = fl.Flat.b.(gf) in
          let resume = fl.Flat.addr.(fl.Flat.c.(gf)) in
          if jpc < 0 then emit pc resume Ba_exec.Event.Ret
          else begin
            emit pc jpc Ba_exec.Event.Ret;
            emit jpc resume Ba_exec.Event.Uncond
          end
        end
      end)
    st.Stream.recs;
  Bep.bep sim

let cost_spec t geom ~noncond ~ret_mp ix spec =
  match spec with
  | Btb { entries; assoc } -> machine_run t geom (Bep.Btb_arch { entries; assoc })
  | Fallthrough | Btfnt | Likely ->
    t.stats.closed_form <- t.stats.closed_form + 1;
    let mf0, mp0 = Lazy.force noncond in
    let mf1, mp1 = rule_cond_counts t geom spec in
    ((mf0 + mf1) * t.penalties.Bep.misfetch)
    + ((mp0 + mp1 + Lazy.force ret_mp) * t.penalties.Bep.mispredict)
  | Pht_direct _ | Pht_gshare _ | Pht_global _ | Pht_local _ ->
    let mf0, mp0 = Lazy.force noncond in
    (mf0 * t.penalties.Bep.misfetch)
    + ((mp0 + Lazy.force ret_mp) * t.penalties.Bep.mispredict)
    + table_cond_penalty t geom ix spec

let create ?(penalties = Bep.default_penalties) ?(ras_depth = 32)
    ?(scoped_max = 32) ~specs profile trace base =
  let program = Ba_cfg.Profile.program profile in
  let stream = Stream.build program trace in
  let stats =
    {
      closed_form = 0;
      cond_cached = 0;
      cond_scoped = 0;
      cond_replayed = 0;
      machine_runs = 0;
      ras_substreams = 0;
    }
  in
  let base_geom = geom_of ~stream ~profile base in
  let t =
    {
      stream;
      profile;
      specs = Array.copy specs;
      penalties;
      ras_depth;
      ras_risky = stream.Stream.max_depth > ras_depth;
      scoped_max;
      base_geom;
      base_cond = Array.make (Array.length specs) 0;
      stats;
    }
  in
  Array.iteri
    (fun ix spec ->
      match spec with
      | Pht_direct _ | Pht_gshare _ | Pht_global _ | Pht_local _ ->
        t.base_cond.(ix) <- full_cond_penalty t base_geom spec
      | Fallthrough | Btfnt | Likely | Btb _ -> ())
    t.specs;
  t

let specs t = Array.copy t.specs

let n_steps t = t.stream.Stream.n_steps

let stats t = t.stats

let cost t decisions =
  let geom = make_geom t decisions in
  let noncond = lazy (noncond_counts t geom) in
  let ret_mp = lazy (ret_mp_count t geom) in
  Array.mapi (cost_spec t geom ~noncond ~ret_mp) t.specs

let cost_arch t ix decisions =
  if ix < 0 || ix >= Array.length t.specs then
    invalid_arg "Ba_delta.Eval.cost_arch: spec index out of range";
  let geom = make_geom t decisions in
  let noncond = lazy (noncond_counts t geom) in
  let ret_mp = lazy (ret_mp_count t geom) in
  cost_spec t geom ~noncond ~ret_mp ix t.specs.(ix)

let delta t decisions mv =
  let before = cost t decisions in
  let after = cost t (Move.apply decisions mv) in
  Array.map2 (fun a b -> a - b) after before
