(** The inter-procedural layout report ([experiments interproc]).

    For each workload: align with ExtTsp, build both the classic
    per-procedure image ({!Ba_layout.Image.build}) and the stitched
    inter-procedural one ({!Ba_layout.Image.build_interproc}) from the
    {e same} decisions, prove the stitched layout (per-procedure
    bisimulation, whole-image address map, cost certificates), and
    replay the recorded trace through both images on all seven simulated
    branch architectures.  The penalty columns show what call-graph
    stitching and hot/cold splitting buy on top of intra-procedural
    alignment alone.

    Every simulation replays the workload's recorded trace and both the
    alignment and the stitching are deterministic, so the table is
    byte-identical at any [-j]. *)

type row = {
  workload : Ba_workloads.Spec.t;
  procs : int;
  split_procs : int;  (** procedures with a cold suffix moved away *)
  cold_insns : int;  (** instruction slots in the trailing cold section *)
  verified : bool;
      (** stitched image bisimulates, its whole-image address map checks
          out, and every architecture's cost certificate cross-checked *)
  plain : int array;
      (** penalty cycles per architecture ({!Harness.full_archs} order),
          classic per-procedure image *)
  stitched : int array;  (** same, inter-procedural image *)
}

val evaluate :
  ?max_steps:int -> ?replay:bool -> Ba_workloads.Spec.t -> row

val evaluate_suite :
  ?max_steps:int ->
  ?jobs:int ->
  ?replay:bool ->
  Ba_workloads.Spec.t list ->
  row list
(** Deterministic parallel evaluation, one task per workload. *)

val render : row list -> string
val to_json : row list -> Ba_util.Json.t
