(** The conflict-aware placement table.

    For each workload: align with the canonical Try15/BTB configuration,
    run {!Ba_conflict.Place.improve} over the aligned layout, and score
    both images against the seven branch-execution-penalty architectures
    of {!Harness.full_archs}.  The row reports penalty cycles with and
    without placement, plus the static conflict objective the placement
    actually optimised.

    Placement optimises a {e prediction}; the simulator is the judge.  A
    guard re-checks the real outcome: when the placed image's total
    penalty cycles exceed the baseline's, the row is marked not applied
    and {!row.effective} falls back to the baseline numbers — placement
    is never allowed to ship a regression. *)

type row = {
  workload : Ba_workloads.Spec.t;
  base : int array;  (** penalty cycles per architecture, aligned image *)
  placed : int array;  (** penalty cycles per architecture, after placement *)
  effective : int array;  (** [placed] when applied, else [base] *)
  applied : bool;  (** the never-worse guard kept the placed image *)
  before : int;  (** static conflict objective, aligned image *)
  after : int;  (** static conflict objective, placed image *)
  swaps : int;
  pad_slots : int;  (** total padding instructions inserted *)
}

val arch_labels : string list
(** Column labels, in {!Harness.full_archs} order. *)

val penalties :
  max_steps:int ->
  profile:Ba_cfg.Profile.t ->
  ?trace:Ba_trace.Trace.t ->
  Ba_layout.Image.t ->
  int array
(** Penalty cycles of one image per {!Harness.full_archs} architecture
    (LIKELY bits rebuilt from the image itself); the inter-procedural
    report scores its images through the same helper so the columns
    match. *)

val evaluate :
  ?max_steps:int -> ?tryn:int -> ?replay:bool -> Ba_workloads.Spec.t -> row

val evaluate_suite :
  ?max_steps:int ->
  ?tryn:int ->
  ?jobs:int ->
  ?replay:bool ->
  Ba_workloads.Spec.t list ->
  row list
(** Deterministic parallel evaluation, as {!Harness.evaluate_suite}. *)

val render : row list -> string
(** Grouped ascii table (FP / INT / Other), one row per workload; each
    architecture cell shows [base>placed] penalty cycles. *)

val to_json : row list -> Ba_util.Json.t
