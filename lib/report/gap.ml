open Ba_core
open Ba_sim

type cell = {
  model : Cost_model.arch;
  greedy : int;
  cost : int;
  exttsp : int;
  tryn : int;
  anneal : int;
  optimal : int;
  opt_lower : int;
  candidates : int;
  simulated : int;
  pruned : int;
}

type row = { workload : Ba_workloads.Spec.t; cells : cell list }

let models =
  [ Cost_model.Fallthrough; Cost_model.Btfnt; Cost_model.Likely;
    Cost_model.Pht; Cost_model.Btb ]

let evaluate ?max_steps ?(k = 4) ?(tryn = 15) ?(delta = true)
    (workload : Ba_workloads.Spec.t) =
  let max_steps =
    match max_steps with
    | Some s -> s
    | None -> Ba_workloads.Spec.default_max_steps
  in
  let program, profile, trace =
    Ba_workloads.Profiled.get_traced ~max_steps workload
  in
  let cells =
    List.map
      (fun model ->
        let layout algo = Align.align_program algo ~arch:model profile in
        let base = layout (Align.Tryn tryn) in
        (* With [delta] (the default) candidates are priced by the
           incremental evaluator — exactly the integer [Bep.bep] a full
           replay reports, which the differential wall enforces — so the
           search costs O(affected sites) per candidate instead of a full
           trace replay.  [delta:false] keeps the historical
           replay-everything oracle; the tables are identical. *)
        let bep =
          if delta then begin
            let ev =
              Ba_delta.Eval.create
                ~specs:[| Ba_delta.Eval.spec_of_model model |]
                profile trace base
            in
            fun decisions -> Ba_delta.Eval.cost_arch ev 0 decisions
          end
          else
            fun decisions ->
              let image = Ba_layout.Image.build ~profile program decisions in
              let arch = Ba_bound.Analyze.arch_of_model model ~profile image in
              let outcome =
                Runner.simulate ~max_steps ~trace ~archs:[ arch ] image
              in
              Bep.bep (snd outcome.Runner.sims.(0))
        in
        let bounds decisions =
          let image = Ba_layout.Image.build ~profile program decisions in
          let arch = Ba_bound.Analyze.arch_of_model model ~profile image in
          let i = Ba_bound.Analyze.bounds ~arch ~profile image in
          (i.Ba_bound.Domain.lo, i.Ba_bound.Domain.hi)
        in
        let greedy = bep (layout Align.Greedy) in
        let cost = bep (layout Align.Cost) in
        let exttsp = bep (layout Align.ExtTsp) in
        let tryn_bep = bep base in
        let anneal = bep (Ba_delta.Anneal.align_program ~arch:model profile) in
        (* Optimal-k explores reorderings of the strongest algorithm's
           layout, so its winner prices what bounded search leaves on the
           table for every algorithm. *)
        let r = Optimal.search ~k ~bounds ~cost:bep ~profile base in
        {
          model;
          greedy;
          cost;
          exttsp;
          tryn = tryn_bep;
          anneal;
          optimal = r.Optimal.best_cost;
          opt_lower = r.Optimal.best_lower;
          candidates = r.Optimal.candidates;
          simulated = r.Optimal.simulated;
          pruned = r.Optimal.pruned;
        })
      models
  in
  { workload; cells }

let evaluate_suite ?max_steps ?k ?tryn ?delta ?jobs workloads =
  Ba_par.Pool.with_pool ?jobs (fun pool ->
      Ba_par.Pool.map pool (evaluate ?max_steps ?k ?tryn ?delta) workloads)

let render rows =
  let open Ba_util.Ascii_table in
  let columns =
    [
      column ~align:Left "workload";
      column ~align:Left "arch";
      column "greedy";
      column "cost";
      column "exttsp";
      column "try15";
      column "anneal";
      column "opt-k";
      column "opt-lb";
      column "gap(greedy)";
      column "gap(cost)";
      column "gap(exttsp)";
      column "gap(try15)";
      column "gap(anneal)";
      column "sim/cand";
    ]
  in
  let cells =
    List.concat_map
      (fun r ->
        List.map
          (fun c ->
            [
              r.workload.Ba_workloads.Spec.name;
              Cost_model.arch_name c.model;
              string_of_int c.greedy;
              string_of_int c.cost;
              string_of_int c.exttsp;
              string_of_int c.tryn;
              string_of_int c.anneal;
              string_of_int c.optimal;
              string_of_int c.opt_lower;
              string_of_int (c.greedy - c.optimal);
              string_of_int (c.cost - c.optimal);
              string_of_int (c.exttsp - c.optimal);
              string_of_int (c.tryn - c.optimal);
              string_of_int (c.anneal - c.optimal);
              Printf.sprintf "%d/%d" c.simulated c.candidates;
            ])
          r.cells)
      rows
  in
  render ~columns ~rows:cells

let to_json rows =
  let open Ba_util.Json in
  Obj
    [
      ("schema", String "ba-gap/2");
      ( "rows",
        List
          (List.concat_map
             (fun r ->
               List.map
                 (fun c ->
                   Obj
                     [
                       ("workload", String r.workload.Ba_workloads.Spec.name);
                       ("arch", String (Cost_model.arch_name c.model));
                       ("greedy", Int c.greedy);
                       ("cost", Int c.cost);
                       ("exttsp", Int c.exttsp);
                       ("try15", Int c.tryn);
                       ("anneal", Int c.anneal);
                       ("optimal", Int c.optimal);
                       ("optimal_lower", Int c.opt_lower);
                       ("gap_greedy", Int (c.greedy - c.optimal));
                       ("gap_cost", Int (c.cost - c.optimal));
                       ("gap_exttsp", Int (c.exttsp - c.optimal));
                       ("gap_try15", Int (c.tryn - c.optimal));
                       ("gap_anneal", Int (c.anneal - c.optimal));
                       ("candidates", Int c.candidates);
                       ("simulated", Int c.simulated);
                       ("pruned", Int c.pruned);
                     ])
                 r.cells)
             rows) );
    ]
