(** Per-workload evaluation harness.

    For one workload this runs the paper's full §5-§6 methodology:

    + execute the original layout once to collect the edge profile;
    + re-execute the original layout, feeding all seven branch
      architectures (three static, two PHTs, two BTBs) and the trace
      statistics;
    + align with Greedy (architecture-oblivious) and re-execute likewise;
    + align with Try15 once per architectural cost model (FALLTHROUGH,
      BT/FNT, LIKELY, PHT, BTB) and execute each against its architectures;
    + for Figure 4, run the Alpha 21064 timing model over the original,
      Greedy and BTB-aligned Try15 images.

    All relative-CPI numbers are against the original program's instruction
    count, as in the paper. *)

type arch_cpis = {
  fallthrough : float;
  btfnt : float;
  likely : float;
  pht_direct : float;
  gshare : float;
  btb64 : float;
  btb256 : float;
}

val full_archs : [ `Arch of Ba_sim.Bep.arch | `Likely ] list
(** The seven simulated branch architectures of Tables 3/4, in column
    order.  [`Likely] stands for profile-guided hint bits, which must be
    rebuilt per image ({!Ba_predict.Likely_bits.build}); the placement
    table reuses this list so its columns match. *)

type eval = {
  workload : Ba_workloads.Spec.t;
  orig_insns : int;
  stats : Ba_exec.Trace_stats.summary;  (** Table 2 row, original layout *)
  orig : arch_cpis;  (** Table 3/4 "Orig" columns *)
  greedy : arch_cpis;  (** Table 3/4 "Greedy" columns *)
  exttsp : arch_cpis;
      (** Table 3/4 "ExtTsp" columns: extended-TSP chain merging
          ({!Ba_core.Exttsp}); architecture-oblivious, so one image feeds
          all seven architectures, as Greedy's does *)
  try15 : arch_cpis;
      (** Table 3/4 "Try15" columns; each architecture's figure comes from
          the image aligned with that architecture's cost model *)
  anneal : arch_cpis;
      (** Table 3/4 "Anneal" columns: the seeded simulated-annealing
          search ({!Ba_delta.Anneal}, seed 0), aligned per cost model
          like Try15 *)
  pct_ft_orig : float;  (** fall-through conditional percentage, original *)
  pct_ft_greedy : float;
  pct_ft_try15_ft : float;  (** after Try15 under the FALLTHROUGH model *)
  pct_ft_try15_btfnt : float;
  pct_ft_try15_likely : float;
  alpha : (float * float * float) option;
      (** Figure 4: (orig, greedy, try15-BTB) relative execution times on
          the 21064 model; computed for the SPEC C programs *)
}

val evaluate :
  ?max_steps:int -> ?tryn:int -> ?replay:bool -> Ba_workloads.Spec.t -> eval
(** [max_steps] defaults to {!Ba_workloads.Spec.default_max_steps}; [tryn]
    to 15.  The workload's profile {e and} semantic trace come from the
    process-wide {!Ba_workloads.Profiled} memo, so the interpreter runs
    only once per workload per budget; every image (original included) is
    then scored by replaying the trace ({!Ba_sim.Runner.simulate}'s
    [?trace] path).  [replay:false] (default [true]) forces the historical
    interpret-every-image path — the results are byte-identical either way,
    which the differential test wall enforces. *)

val evaluate_suite :
  ?max_steps:int ->
  ?tryn:int ->
  ?jobs:int ->
  ?replay:bool ->
  Ba_workloads.Spec.t list ->
  eval list
(** Evaluate the workloads on a {!Ba_par.Pool} of [jobs] domains (default
    {!Ba_par.Pool.default_jobs}, i.e. the [BA_JOBS] environment variable or
    the machine's domain count; [jobs = 1] forces the sequential path).
    Results are returned in workload order whatever the scheduling, so
    every rendered table is byte-identical to a sequential run. *)

val evaluate_suite_timed :
  ?max_steps:int ->
  ?tryn:int ->
  ?jobs:int ->
  ?replay:bool ->
  Ba_workloads.Spec.t list ->
  eval list * Ba_par.Stats.t
(** {!evaluate_suite} plus per-workload wall times. *)

val class_groups : eval list -> (string * eval list) list
(** Group evaluations by workload class, preserving order, with the
    paper's group labels. *)
