(** The measured optimality-gap table ([experiments gap]).

    For each workload x cost-model architecture: the exact simulated
    penalty cycles of the Greedy, Cost, ExtTsp and Try15 layouts, and the
    {!Ba_core.Optimal} branch-and-bound result over the Try15 layout's k
    hottest chains — an exactly-priced optimum over the candidate set,
    reached while pruning most candidates on their {!Ba_bound} lower
    bounds alone.  The gap columns are each algorithm's distance from that
    optimum; [gap(try15)] is always [>= 0] because the identity reordering
    is itself a candidate.

    Every simulation replays the workload's recorded trace, so the table
    is deterministic at any [-j].  [delta] (default [true]) prices
    candidates with {!Ba_delta.Eval} — bit-equal to the full replay, in
    O(affected sites) per candidate — instead of replaying the whole trace
    per candidate; [delta:false] keeps the historical oracle and produces
    the identical table.  The [anneal] column is the seeded
    simulated-annealing search ({!Ba_delta.Anneal}, seed 0). *)

type cell = {
  model : Ba_core.Cost_model.arch;
  greedy : int;  (** penalty cycles, Greedy layout *)
  cost : int;
  exttsp : int;  (** penalty cycles, extended-TSP chain-merging layout *)
  tryn : int;
  anneal : int;  (** penalty cycles, simulated-annealing layout (seed 0) *)
  optimal : int;  (** Optimal-k best exactly-priced cost *)
  opt_lower : int;  (** that winner's own static lower bound *)
  candidates : int;
  simulated : int;
  pruned : int;
}

type row = { workload : Ba_workloads.Spec.t; cells : cell list }

val models : Ba_core.Cost_model.arch list
(** The five cost-model architectures, in harness column order. *)

val evaluate :
  ?max_steps:int ->
  ?k:int ->
  ?tryn:int ->
  ?delta:bool ->
  Ba_workloads.Spec.t ->
  row

val evaluate_suite :
  ?max_steps:int ->
  ?k:int ->
  ?tryn:int ->
  ?delta:bool ->
  ?jobs:int ->
  Ba_workloads.Spec.t list ->
  row list
(** Deterministic parallel evaluation, one task per workload. *)

val render : row list -> string
val to_json : row list -> Ba_util.Json.t
