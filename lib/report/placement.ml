open Ba_core
open Ba_sim

type row = {
  workload : Ba_workloads.Spec.t;
  base : int array;
  placed : int array;
  effective : int array;
  applied : bool;
  before : int;
  after : int;
  swaps : int;
  pad_slots : int;
}

let arch_labels =
  [
    "FALLTHROUGH";
    "BT/FNT";
    "LIKELY";
    "PHT-4096";
    "gshare-4096";
    "BTB-64/2";
    "BTB-256/4";
  ]

let penalties ~max_steps ~profile ?trace image =
  let archs =
    List.map
      (function
        | `Likely ->
          Bep.Static_likely (Ba_predict.Likely_bits.build image profile)
        | `Arch a -> a)
      Harness.full_archs
  in
  let outcome = Runner.simulate ~max_steps ?trace ~archs image in
  Array.map (fun (_, sim) -> Bep.bep sim) outcome.Runner.sims

let evaluate ?max_steps ?(tryn = 15) ?(replay = true)
    (workload : Ba_workloads.Spec.t) =
  let max_steps =
    match max_steps with
    | Some s -> s
    | None -> Ba_workloads.Spec.default_max_steps
  in
  let program, profile, trace =
    Ba_workloads.Profiled.get_traced ~max_steps workload
  in
  let trace = if replay then Some trace else None in
  (* The canonical BTB-aligned Try15 layout — the configuration the paper
     carries into its hardware evaluation — is the placement baseline. *)
  let decisions =
    Align.align_program (Align.Tryn tryn) ~arch:Cost_model.Btb profile
  in
  let base_image = Ba_layout.Image.build ~profile program decisions in
  let place =
    Ba_conflict.Place.improve ~arch:Cost_model.Btb ~profile program decisions
  in
  let base = penalties ~max_steps ~profile ?trace base_image in
  let placed = penalties ~max_steps ~profile ?trace place.Ba_conflict.Place.image in
  let total a = Array.fold_left ( + ) 0 a in
  let applied = total placed <= total base in
  {
    workload;
    base;
    placed;
    effective = (if applied then placed else base);
    applied;
    before = place.Ba_conflict.Place.before;
    after = place.Ba_conflict.Place.after;
    swaps = place.Ba_conflict.Place.swaps;
    pad_slots = Array.fold_left ( + ) 0 place.Ba_conflict.Place.pads;
  }

let evaluate_suite ?max_steps ?tryn ?jobs ?replay workloads =
  Ba_par.Pool.with_pool ?jobs (fun pool ->
      Ba_par.Pool.map pool (evaluate ?max_steps ?tryn ?replay) workloads)

let render rows =
  let open Ba_util.Ascii_table in
  let columns =
    column ~align:Left "workload"
    :: List.map (fun l -> column l) arch_labels
    @ [ column "conflict-wt"; column "swaps"; column "pads"; column ~align:Left "kept" ]
  in
  let cell base placed = Printf.sprintf "%d>%d" base placed in
  let to_row r =
    r.workload.Ba_workloads.Spec.name
    :: List.init (Array.length r.base) (fun i -> cell r.base.(i) r.placed.(i))
    @ [
        Printf.sprintf "%d>%d" r.before r.after;
        int_cell r.swaps;
        int_cell r.pad_slots;
        (if r.applied then "yes" else "no (reverted)");
      ]
  in
  let groups =
    List.filter_map
      (fun cls ->
        match
          List.filter (fun r -> r.workload.Ba_workloads.Spec.cls = cls) rows
        with
        | [] -> None
        | rs -> Some (Ba_workloads.Spec.cls_name cls, List.map to_row rs))
      [ Ba_workloads.Spec.Fp; Ba_workloads.Spec.Int; Ba_workloads.Spec.Other ]
  in
  render_grouped ~columns ~groups

let to_json rows =
  let open Ba_util.Json in
  let arr a = List (Array.to_list (Array.map (fun v -> Int v) a)) in
  Obj
    [
      ("schema", String "ba-placement/1");
      ("arch_labels", List (List.map (fun l -> String l) arch_labels));
      ( "rows",
        List
          (List.map
             (fun r ->
               Obj
                 [
                   ("workload", String r.workload.Ba_workloads.Spec.name);
                   ("class", String (Ba_workloads.Spec.cls_name r.workload.Ba_workloads.Spec.cls));
                   ("base_penalty_cycles", arr r.base);
                   ("placed_penalty_cycles", arr r.placed);
                   ("effective_penalty_cycles", arr r.effective);
                   ("applied", Bool r.applied);
                   ("conflict_weight_before", Int r.before);
                   ("conflict_weight_after", Int r.after);
                   ("swaps", Int r.swaps);
                   ("pad_slots", Int r.pad_slots);
                 ])
             rows) );
    ]
