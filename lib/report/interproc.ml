open Ba_core

type row = {
  workload : Ba_workloads.Spec.t;
  procs : int;
  split_procs : int;
  cold_insns : int;
  verified : bool;
  plain : int array;
  stitched : int array;
}

let evaluate ?max_steps ?(replay = true) (workload : Ba_workloads.Spec.t) =
  let max_steps =
    match max_steps with
    | Some s -> s
    | None -> Ba_workloads.Spec.default_max_steps
  in
  let program, profile, trace =
    Ba_workloads.Profiled.get_traced ~max_steps workload
  in
  let n = Ba_ir.Program.n_procs program in
  let decisions = Align.align_program Align.ExtTsp profile in
  let plain_image = Ba_layout.Image.build ~profile program decisions in
  let ip = Ba_layout.Image.build_interproc ~profile program decisions in
  let split_procs = ref 0 in
  Array.iteri
    (fun p s ->
      if s < Ba_ir.Proc.n_blocks (Ba_ir.Program.proc program p) then
        incr split_procs)
    ip.Ba_layout.Image.splits;
  let stitched_image = ip.Ba_layout.Image.image in
  (* The stitched layout is proved, not trusted: per-procedure
     bisimulation plus cost certificates (verify_image), and the
     whole-image address map — stitched order, one cold section, no
     overlaps — by Check_image. *)
  let bisim, certificates, cert_diags, _audit =
    Ba_verify.Run.verify_image ~audit:false ~trace
      ~workload:workload.Ba_workloads.Spec.name ~algo:(Align.algo_name Align.ExtTsp)
      ~profile stitched_image
  in
  let image_diags = Ba_analysis.Check_image.check stitched_image in
  let verified =
    bisim = [] && cert_diags = []
    && not (List.exists Ba_analysis.Diagnostic.is_error image_diags)
    && certificates <> []
  in
  let trace = if replay then Some trace else None in
  let penalties image = Placement.penalties ~max_steps ~profile ?trace image in
  {
    workload;
    procs = n;
    split_procs = !split_procs;
    cold_insns = stitched_image.Ba_layout.Image.total_size - ip.Ba_layout.Image.hot_size;
    verified;
    plain = penalties plain_image;
    stitched = penalties stitched_image;
  }

let evaluate_suite ?max_steps ?jobs ?replay workloads =
  Ba_par.Pool.with_pool ?jobs (fun pool ->
      Ba_par.Pool.map pool (evaluate ?max_steps ?replay) workloads)

let render rows =
  let open Ba_util.Ascii_table in
  let columns =
    column ~align:Left "workload"
    :: List.map (fun l -> column l) Placement.arch_labels
    @ [
        column "procs"; column "split"; column "cold-insns";
        column ~align:Left "proved";
      ]
  in
  let to_row r =
    r.workload.Ba_workloads.Spec.name
    :: List.init (Array.length r.plain) (fun i ->
           Printf.sprintf "%d>%d" r.plain.(i) r.stitched.(i))
    @ [
        int_cell r.procs;
        int_cell r.split_procs;
        int_cell r.cold_insns;
        (if r.verified then "yes" else "NO");
      ]
  in
  let groups =
    List.filter_map
      (fun cls ->
        match
          List.filter (fun r -> r.workload.Ba_workloads.Spec.cls = cls) rows
        with
        | [] -> None
        | rs -> Some (Ba_workloads.Spec.cls_name cls, List.map to_row rs))
      [ Ba_workloads.Spec.Fp; Ba_workloads.Spec.Int; Ba_workloads.Spec.Other ]
  in
  render_grouped ~columns ~groups

let to_json rows =
  let open Ba_util.Json in
  let arr a = List (Array.to_list (Array.map (fun v -> Int v) a)) in
  Obj
    [
      ("schema", String "ba-interproc/1");
      ("arch_labels", List (List.map (fun l -> String l) Placement.arch_labels));
      ( "rows",
        List
          (List.map
             (fun r ->
               Obj
                 [
                   ("workload", String r.workload.Ba_workloads.Spec.name);
                   ("class", String (Ba_workloads.Spec.cls_name r.workload.Ba_workloads.Spec.cls));
                   ("procs", Int r.procs);
                   ("split_procs", Int r.split_procs);
                   ("cold_insns", Int r.cold_insns);
                   ("verified", Bool r.verified);
                   ("plain_penalty_cycles", arr r.plain);
                   ("stitched_penalty_cycles", arr r.stitched);
                 ])
             rows) );
    ]
