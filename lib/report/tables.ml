open Ba_util

let fc = Ascii_table.float_cell
let col = Ascii_table.column
let lcol name = Ascii_table.column ~align:Ascii_table.Left name

let table1 () =
  let t = Ba_core.Cost_model.default_table in
  let row name cycles note = [ name; fc ~decimals:0 cycles; note ] in
  Ascii_table.render
    ~columns:[ lcol "Branch"; col "Cycles"; lcol "Components" ]
    ~rows:
      [
        row "Unconditional branch" (t.instruction +. t.misfetch) "instruction + misfetch";
        row "Correctly predicted fall-through" t.instruction "instruction";
        row "Correctly predicted taken" (t.instruction +. t.misfetch)
          "instruction + misfetch";
        row "Mispredicted" (t.instruction +. t.mispredict) "instruction + mispredict";
      ]

let grouped_with_averages ~columns ~row ~avg evals =
  let groups =
    List.map
      (fun (label, es) ->
        let rows = List.map row es in
        (label, rows @ [ avg label es ]))
      (Harness.class_groups evals)
  in
  Ascii_table.render_grouped ~columns ~groups

let mean f es = Stats.mean (List.map f es)

(* -- Table 2 ---------------------------------------------------------------- *)

let table2 evals =
  let columns =
    [
      lcol "Program"; col "Insns Traced"; col "%Breaks"; col "Q-50"; col "Q-90";
      col "Q-99"; col "Q-100"; col "Static"; col "%Taken"; col "%CBr"; col "%IJ";
      col "%Br"; col "%Call"; col "%Ret";
    ]
  in
  let row (e : Harness.eval) =
    let s = e.Harness.stats in
    [
      e.Harness.workload.Ba_workloads.Spec.name;
      Ascii_table.int_cell s.Ba_exec.Trace_stats.insns;
      fc ~decimals:1 s.pct_breaks;
      string_of_int s.q50;
      string_of_int s.q90;
      string_of_int s.q99;
      string_of_int s.q100;
      string_of_int s.static_cond_sites;
      fc ~decimals:1 s.pct_taken;
      fc ~decimals:1 s.pct_cbr;
      fc ~decimals:1 s.pct_ij;
      fc ~decimals:1 s.pct_br;
      fc ~decimals:1 s.pct_call;
      fc ~decimals:1 s.pct_ret;
    ]
  in
  let avg label es =
    let m f = fc ~decimals:1 (mean f es) in
    [
      label ^ " Avg"; ""; m (fun e -> e.Harness.stats.Ba_exec.Trace_stats.pct_breaks);
      ""; ""; ""; ""; "";
      m (fun e -> e.Harness.stats.Ba_exec.Trace_stats.pct_taken);
      m (fun e -> e.Harness.stats.Ba_exec.Trace_stats.pct_cbr);
      m (fun e -> e.Harness.stats.Ba_exec.Trace_stats.pct_ij);
      m (fun e -> e.Harness.stats.Ba_exec.Trace_stats.pct_br);
      m (fun e -> e.Harness.stats.Ba_exec.Trace_stats.pct_call);
      m (fun e -> e.Harness.stats.Ba_exec.Trace_stats.pct_ret);
    ]
  in
  grouped_with_averages ~columns ~row ~avg evals

(* -- Table 3 ---------------------------------------------------------------- *)

let table3 evals =
  let columns =
    [
      lcol "Program";
      (* relative CPI *)
      col "FT:Orig"; col "FT:Greedy"; col "FT:ExtTsp"; col "FT:Try15";
      col "FT:Anneal";
      col "BTFNT:Orig"; col "BTFNT:Greedy"; col "BTFNT:ExtTsp";
      col "BTFNT:Try15"; col "BTFNT:Anneal";
      col "LIKELY:Orig"; col "LIKELY:Greedy"; col "LIKELY:ExtTsp";
      col "LIKELY:Try15"; col "LIKELY:Anneal";
      (* % fall-through conditionals *)
      col "%FT:Orig"; col "%FT:Greedy"; col "%FT:T15@FT"; col "%FT:T15@BTFNT";
      col "%FT:T15@LIKELY";
    ]
  in
  let row (e : Harness.eval) =
    [
      e.Harness.workload.Ba_workloads.Spec.name;
      fc e.Harness.orig.Harness.fallthrough;
      fc e.Harness.greedy.Harness.fallthrough;
      fc e.Harness.exttsp.Harness.fallthrough;
      fc e.Harness.try15.Harness.fallthrough;
      fc e.Harness.anneal.Harness.fallthrough;
      fc e.Harness.orig.Harness.btfnt;
      fc e.Harness.greedy.Harness.btfnt;
      fc e.Harness.exttsp.Harness.btfnt;
      fc e.Harness.try15.Harness.btfnt;
      fc e.Harness.anneal.Harness.btfnt;
      fc e.Harness.orig.Harness.likely;
      fc e.Harness.greedy.Harness.likely;
      fc e.Harness.exttsp.Harness.likely;
      fc e.Harness.try15.Harness.likely;
      fc e.Harness.anneal.Harness.likely;
      fc ~decimals:1 e.Harness.pct_ft_orig;
      fc ~decimals:1 e.Harness.pct_ft_greedy;
      fc ~decimals:1 e.Harness.pct_ft_try15_ft;
      fc ~decimals:1 e.Harness.pct_ft_try15_btfnt;
      fc ~decimals:1 e.Harness.pct_ft_try15_likely;
    ]
  in
  let avg label es =
    let m f = fc (mean f es) in
    let mp f = fc ~decimals:1 (mean f es) in
    [
      label ^ " Avg";
      m (fun e -> e.Harness.orig.Harness.fallthrough);
      m (fun e -> e.Harness.greedy.Harness.fallthrough);
      m (fun e -> e.Harness.exttsp.Harness.fallthrough);
      m (fun e -> e.Harness.try15.Harness.fallthrough);
      m (fun e -> e.Harness.anneal.Harness.fallthrough);
      m (fun e -> e.Harness.orig.Harness.btfnt);
      m (fun e -> e.Harness.greedy.Harness.btfnt);
      m (fun e -> e.Harness.exttsp.Harness.btfnt);
      m (fun e -> e.Harness.try15.Harness.btfnt);
      m (fun e -> e.Harness.anneal.Harness.btfnt);
      m (fun e -> e.Harness.orig.Harness.likely);
      m (fun e -> e.Harness.greedy.Harness.likely);
      m (fun e -> e.Harness.exttsp.Harness.likely);
      m (fun e -> e.Harness.try15.Harness.likely);
      m (fun e -> e.Harness.anneal.Harness.likely);
      mp (fun e -> e.Harness.pct_ft_orig);
      mp (fun e -> e.Harness.pct_ft_greedy);
      mp (fun e -> e.Harness.pct_ft_try15_ft);
      mp (fun e -> e.Harness.pct_ft_try15_btfnt);
      mp (fun e -> e.Harness.pct_ft_try15_likely);
    ]
  in
  grouped_with_averages ~columns ~row ~avg evals

(* -- Table 4 ---------------------------------------------------------------- *)

let table4 evals =
  let columns =
    [
      lcol "Program";
      col "PHT:Orig"; col "PHT:Greedy"; col "PHT:ExtTsp"; col "PHT:Try15";
      col "PHT:Anneal";
      col "gshare:Orig"; col "gshare:Greedy"; col "gshare:ExtTsp";
      col "gshare:Try15"; col "gshare:Anneal";
      col "BTB64:Orig"; col "BTB64:Greedy"; col "BTB64:ExtTsp";
      col "BTB64:Try15"; col "BTB64:Anneal";
      col "BTB256:Orig"; col "BTB256:Greedy"; col "BTB256:ExtTsp";
      col "BTB256:Try15"; col "BTB256:Anneal";
    ]
  in
  let cells (e : Harness.eval) f =
    [
      fc (f e.Harness.orig); fc (f e.Harness.greedy); fc (f e.Harness.exttsp);
      fc (f e.Harness.try15); fc (f e.Harness.anneal);
    ]
  in
  let row (e : Harness.eval) =
    (e.Harness.workload.Ba_workloads.Spec.name :: cells e (fun c -> c.Harness.pht_direct))
    @ cells e (fun c -> c.Harness.gshare)
    @ cells e (fun c -> c.Harness.btb64)
    @ cells e (fun c -> c.Harness.btb256)
  in
  let avg label es =
    let m sel f = fc (mean (fun e -> f (sel e)) es) in
    let trio f =
      [
        m (fun e -> e.Harness.orig) f;
        m (fun e -> e.Harness.greedy) f;
        m (fun e -> e.Harness.exttsp) f;
        m (fun e -> e.Harness.try15) f;
        m (fun e -> e.Harness.anneal) f;
      ]
    in
    ((label ^ " Avg") :: trio (fun c -> c.Harness.pht_direct))
    @ trio (fun c -> c.Harness.gshare)
    @ trio (fun c -> c.Harness.btb64)
    @ trio (fun c -> c.Harness.btb256)
  in
  grouped_with_averages ~columns ~row ~avg evals

(* -- Figure 4 ---------------------------------------------------------------- *)

let fig4 evals =
  let columns =
    [ lcol "Program"; col "Original"; col "Pettis&Hansen"; col "Try15"; col "Try15 gain%" ]
  in
  let rows =
    List.filter_map
      (fun (e : Harness.eval) ->
        match e.Harness.alpha with
        | Some (o, g, t) ->
          Some
            [
              e.Harness.workload.Ba_workloads.Spec.name;
              fc o; fc g; fc t;
              fc ~decimals:1 (100.0 *. (1.0 -. t));
            ]
        | None -> None)
      evals
  in
  Ascii_table.render ~columns ~rows
