open Ba_core
open Ba_sim

type arch_cpis = {
  fallthrough : float;
  btfnt : float;
  likely : float;
  pht_direct : float;
  gshare : float;
  btb64 : float;
  btb256 : float;
}

type eval = {
  workload : Ba_workloads.Spec.t;
  orig_insns : int;
  stats : Ba_exec.Trace_stats.summary;
  orig : arch_cpis;
  greedy : arch_cpis;
  exttsp : arch_cpis;
  try15 : arch_cpis;
  anneal : arch_cpis;
  pct_ft_orig : float;
  pct_ft_greedy : float;
  pct_ft_try15_ft : float;
  pct_ft_try15_btfnt : float;
  pct_ft_try15_likely : float;
  alpha : (float * float * float) option;
}

(* The paper's simulated configurations (§3): 4096-entry PHTs (1 KB of
   2-bit counters), a 12-bit global history for the correlation PHT, a
   64-entry 2-way and a 256-entry 4-way BTB. *)
let pht_direct_arch = Bep.Pht_direct { entries = 4096 }
let gshare_arch = Bep.Pht_gshare { entries = 4096; history_bits = 12 }
let btb64_arch = Bep.Btb_arch { entries = 64; assoc = 2 }
let btb256_arch = Bep.Btb_arch { entries = 256; assoc = 4 }

(* Run one image against a list of architectures, where LIKELY bits are
   derived from the image itself (profile-guided hints follow the rewritten
   binary, as re-annotating after transformation would). *)
let run_image ~max_steps ~profile ?trace ~archs image =
  let archs =
    List.map
      (function
        | `Likely -> Bep.Static_likely (Ba_predict.Likely_bits.build image profile)
        | `Arch a -> a)
      archs
  in
  Runner.simulate ~max_steps ?trace ~archs image

let cpi outcome ~orig_insns arch_index =
  let _, sim = outcome.Runner.sims.(arch_index) in
  Bep.relative_cpi sim ~insns:outcome.Runner.result.Ba_exec.Engine.insns ~orig_insns

let full_archs =
  [
    `Arch Bep.Static_fallthrough;
    `Arch Bep.Static_btfnt;
    `Likely;
    `Arch pht_direct_arch;
    `Arch gshare_arch;
    `Arch btb64_arch;
    `Arch btb256_arch;
  ]

let cpis_of_full outcome ~orig_insns =
  let c i = cpi outcome ~orig_insns i in
  {
    fallthrough = c 0;
    btfnt = c 1;
    likely = c 2;
    pht_direct = c 3;
    gshare = c 4;
    btb64 = c 5;
    btb256 = c 6;
  }

let evaluate ?max_steps ?(tryn = 15) ?(replay = true) (workload : Ba_workloads.Spec.t) =
  let max_steps =
    match max_steps with Some s -> s | None -> Ba_workloads.Spec.default_max_steps
  in
  (* Record once, replay many: the single memoized interpreter pass yields
     the profile and the semantic trace, and every image below — original
     included — replays that trace instead of re-interpreting.
     [replay:false] forces the historical interpret-everything path; the
     differential test wall proves both produce byte-identical tables. *)
  let program, profile, trace = Ba_workloads.Profiled.get_traced ~max_steps workload in
  let trace = if replay then Some trace else None in
  let run_image = run_image ~max_steps ~profile ?trace in
  let orig_image = Ba_layout.Image.original ~profile program in
  let orig_out = run_image ~archs:full_archs orig_image in
  let orig_insns = orig_out.Runner.result.Ba_exec.Engine.insns in
  let greedy_image = Align.image Align.Greedy profile in
  let greedy_out = run_image ~archs:full_archs greedy_image in
  (* As in §6.1, layouts evaluated on BT/FNT use the Pettis & Hansen
     precedence chain ordering; everything else uses weight-descending. *)
  let greedy_btfnt_image =
    Align.image Align.Greedy ~strategy:Ba_layout.Chain_order.Btfnt_precedence profile
  in
  let greedy_btfnt_out =
    run_image ~archs:[ `Arch Bep.Static_btfnt ] greedy_btfnt_image
  in
  (* ExtTSP is architecture-oblivious like Greedy: one image, all seven
     simulated architectures. *)
  let exttsp_image = Align.image Align.ExtTsp profile in
  let exttsp_out = run_image ~archs:full_archs exttsp_image in
  (* One Try15 alignment per architectural cost model. *)
  let try15_image ?strategy arch = Align.image (Align.Tryn tryn) ?strategy ~arch profile in
  let t15_ft_img = try15_image Cost_model.Fallthrough in
  let t15_btfnt_img =
    (* Two refinement rounds: the second pass knows the first layout's real
       branch directions, which only BT/FNT cares about. *)
    Align.image (Align.Tryn tryn) ~strategy:Ba_layout.Chain_order.Btfnt_precedence
      ~arch:Cost_model.Btfnt ~refine_rounds:2 profile
  in
  let t15_likely_img = try15_image Cost_model.Likely in
  let t15_pht_img = try15_image Cost_model.Pht in
  let t15_btb_img = try15_image Cost_model.Btb in
  let t15_ft = run_image ~archs:[ `Arch Bep.Static_fallthrough ] t15_ft_img in
  let t15_btfnt = run_image ~archs:[ `Arch Bep.Static_btfnt ] t15_btfnt_img in
  let t15_likely = run_image ~archs:[ `Likely ] t15_likely_img in
  let t15_pht =
    run_image ~archs:[ `Arch pht_direct_arch; `Arch gshare_arch ] t15_pht_img
  in
  let t15_btb =
    run_image ~archs:[ `Arch btb64_arch; `Arch btb256_arch ] t15_btb_img
  in
  let try15 =
    {
      fallthrough = cpi t15_ft ~orig_insns 0;
      btfnt = cpi t15_btfnt ~orig_insns 0;
      likely = cpi t15_likely ~orig_insns 0;
      pht_direct = cpi t15_pht ~orig_insns 0;
      gshare = cpi t15_pht ~orig_insns 1;
      btb64 = cpi t15_btb ~orig_insns 0;
      btb256 = cpi t15_btb ~orig_insns 1;
    }
  in
  (* One annealed alignment per architectural cost model, mirroring the
     Try15 structure.  Seed 0 and a fixed schedule: the column is
     byte-identical across runs and at any [-j]. *)
  let anneal_image arch = Ba_delta.Anneal.image ~arch profile in
  let an_ft = run_image ~archs:[ `Arch Bep.Static_fallthrough ] (anneal_image Cost_model.Fallthrough) in
  let an_btfnt = run_image ~archs:[ `Arch Bep.Static_btfnt ] (anneal_image Cost_model.Btfnt) in
  let an_likely = run_image ~archs:[ `Likely ] (anneal_image Cost_model.Likely) in
  let an_pht =
    run_image ~archs:[ `Arch pht_direct_arch; `Arch gshare_arch ]
      (anneal_image Cost_model.Pht)
  in
  let an_btb =
    run_image ~archs:[ `Arch btb64_arch; `Arch btb256_arch ]
      (anneal_image Cost_model.Btb)
  in
  let anneal =
    {
      fallthrough = cpi an_ft ~orig_insns 0;
      btfnt = cpi an_btfnt ~orig_insns 0;
      likely = cpi an_likely ~orig_insns 0;
      pht_direct = cpi an_pht ~orig_insns 0;
      gshare = cpi an_pht ~orig_insns 1;
      btb64 = cpi an_btb ~orig_insns 0;
      btb256 = cpi an_btb ~orig_insns 1;
    }
  in
  let alpha =
    if List.mem workload.Ba_workloads.Spec.name Ba_workloads.Spec.spec_c_programs then begin
      (* Numeric programs carry a high floating-point share, which pairs
         with integer-pipe work on the dual-issue 21064. *)
      let fp_fraction =
        match workload.Ba_workloads.Spec.cls with
        | Ba_workloads.Spec.Fp -> 0.5
        | Ba_workloads.Spec.Int | Ba_workloads.Spec.Other -> 0.08
      in
      let run_alpha image =
        let result, alpha = Runner.simulate_alpha ~max_steps ~fp_fraction ?trace image in
        Alpha.cycles alpha ~insns:result.Ba_exec.Engine.insns
      in
      let orig_cycles = run_alpha orig_image in
      let greedy_cycles = run_alpha greedy_image in
      let try15_cycles = run_alpha t15_btb_img in
      Some (1.0, greedy_cycles /. orig_cycles, try15_cycles /. orig_cycles)
    end
    else None
  in
  {
    workload;
    orig_insns;
    stats =
      Ba_exec.Trace_stats.summarize orig_out.Runner.stats ~program ~insns:orig_insns;
    orig = cpis_of_full orig_out ~orig_insns;
    greedy =
      { (cpis_of_full greedy_out ~orig_insns) with
        btfnt = cpi greedy_btfnt_out ~orig_insns 0 };
    exttsp = cpis_of_full exttsp_out ~orig_insns;
    try15;
    anneal;
    pct_ft_orig = Ba_exec.Trace_stats.pct_cond_fallthrough orig_out.Runner.stats;
    pct_ft_greedy = Ba_exec.Trace_stats.pct_cond_fallthrough greedy_out.Runner.stats;
    pct_ft_try15_ft = Ba_exec.Trace_stats.pct_cond_fallthrough t15_ft.Runner.stats;
    pct_ft_try15_btfnt = Ba_exec.Trace_stats.pct_cond_fallthrough t15_btfnt.Runner.stats;
    pct_ft_try15_likely = Ba_exec.Trace_stats.pct_cond_fallthrough t15_likely.Runner.stats;
    alpha;
  }

let evaluate_suite ?max_steps ?tryn ?jobs ?replay workloads =
  Ba_par.Pool.with_pool ?jobs (fun pool ->
      Ba_par.Pool.map pool (evaluate ?max_steps ?tryn ?replay) workloads)

let evaluate_suite_timed ?max_steps ?tryn ?jobs ?replay workloads =
  Ba_par.Pool.with_pool ?jobs (fun pool ->
      Ba_par.Pool.timed_map pool ~label:"evaluate_suite"
        ~task_label:(fun (w : Ba_workloads.Spec.t) -> w.Ba_workloads.Spec.name)
        (evaluate ?max_steps ?tryn ?replay) workloads)

let class_groups evals =
  let group cls =
    List.filter (fun e -> e.workload.Ba_workloads.Spec.cls = cls) evals
  in
  List.filter_map
    (fun cls ->
      match group cls with
      | [] -> None
      | es -> Some (Ba_workloads.Spec.cls_name cls, es))
    [ Ba_workloads.Spec.Fp; Ba_workloads.Spec.Int; Ba_workloads.Spec.Other ]
