(** Abstract interpretation of a lowered image into sound penalty-cycle
    bounds.

    For one branch architecture, walk the image's branch sites
    ({!Ba_conflict.Site.extract} — exact per-site outcome counts, static
    RAS call-chain bound) and price each site with the architecture's
    abstract transfer function:

    - {b static rules}: the prediction is a pure function of the address
      map ({!Ba_predict.Static_rule.predict_taken}), so conditional costs
      are exact;
    - {b direct-indexed PHT}: sites aliasing one counter (the same
      {!Ba_predict.Pht.direct_index}) are pooled and their joint outcome
      batches run through the 2-bit-counter interval domain
      ({!Domain.Counter});
    - {b dynamic-history tables} (gshare / GAg / PAg): no static grouping
      is sound, so conditionals get the vacuous [\[mf*taken, mp*weight\]]
      interval plus one whole-layout guaranteed first mispredict;
    - {b BTB}: best/worst-case aliasing from
      {!Ba_conflict.Analyze.of_summary}'s conflict map — conflict-free
      sets can never evict, so repeat transfers hit; every site's first
      taken execution is a guaranteed miss;
    - {b RAS} (all architectures): when the static call-chain bound fits
      the stack, every pop matches its push — non-main returns are exactly
      free and main's halting return exactly mispredicts.

    The analysis never runs the trace: it is pure arithmetic over the
    address map and the profile, deterministic by construction.  Its
    soundness contract — [total.lo <= Bep.bep <= total.hi] for the
    simulator run on the same profile's trace — is enforced by
    [test/test_bound.ml] over the whole workload x algorithm x
    architecture matrix and on random programs. *)

type row = {
  proc : Ba_ir.Term.proc_id;
  block : Ba_ir.Term.block_id;  (** representative semantic site *)
  pc : int;  (** absolute address of the (first pooled) branch *)
  pooled : int;  (** sites sharing this predictor entry (1 = alone) *)
  weight : int;  (** executions priced by this row *)
  what : string;  (** cond | cond-pool | jump | jump-cont | switch | call | vcall | ret *)
  penalty : Domain.interval;
}

type t = {
  arch : Ba_sim.Bep.arch;
  rows : row list;  (** in (procedure, pc) order *)
  extra_lo : int;
      (** whole-layout lower-bound supplement not attributable to one row
          (the dynamic-table first-taken mispredict) *)
  total : Domain.interval;
}

val analyze :
  ?penalties:Ba_sim.Bep.penalties ->
  ?return_stack_depth:int ->
  arch:Ba_sim.Bep.arch ->
  profile:Ba_cfg.Profile.t ->
  Ba_layout.Image.t ->
  t
(** For [Static_likely], the likely bits must have been built from this
    same image ({!Ba_predict.Likely_bits.build}), as the harness does. *)

val bounds :
  ?penalties:Ba_sim.Bep.penalties ->
  ?return_stack_depth:int ->
  arch:Ba_sim.Bep.arch ->
  profile:Ba_cfg.Profile.t ->
  Ba_layout.Image.t ->
  Domain.interval
(** Just the whole-layout interval of {!analyze}. *)

val arch_of_model :
  Ba_core.Cost_model.arch ->
  profile:Ba_cfg.Profile.t ->
  Ba_layout.Image.t ->
  Ba_sim.Bep.arch
(** The harness's canonical simulated architecture for a cost-model arch
    (LIKELY builds its hint bits from the given image, as the harness
    does); used by the [bound] lint stage and the optimality-gap report to
    pair a cost model with the simulator that judges it. *)
