open Ba_analysis

(* The gap-too-wide heat thresholds: an interval is uninformative when the
   upper bound at least doubles the lower AND the absolute width could hide
   a whole alignment algorithm's worth of cycles. *)
let wide_ratio = 2
let wide_cycles = 64

let all_algos =
  [ Ba_core.Align.Original; Ba_core.Align.Greedy; Ba_core.Align.Cost;
    Ba_core.Align.Tryn 15 ]

let check ~algo ~arch ~profile image =
  let program = image.Ba_layout.Image.program in
  let sim_arch = Analyze.arch_of_model arch ~profile image in
  let this = Analyze.bounds ~arch:sim_arch ~profile image in
  let label = Ba_sim.Bep.arch_label sim_arch in
  let wide =
    let lo = this.Domain.lo and hi = this.Domain.hi in
    if hi >= wide_ratio * max lo 1 && hi - lo >= wide_cycles then
      [
        Diagnostic.make Diagnostic.Info ~rule:"bound/gap-too-wide"
          ~loc:Diagnostic.Program
          "%s: penalty interval [%d, %d] is uninformative (width %d >= %dx \
           the lower bound)"
          label lo hi (hi - lo) wide_ratio;
      ]
    else []
  in
  (* Another algorithm whose upper bound beats this layout's lower bound
     certifies suboptimality without a single simulation. *)
  let suboptimal =
    List.filter_map
      (fun other ->
        if other = algo then None
        else begin
          let decisions = Ba_core.Align.align_program other ~arch profile in
          let image' = Ba_layout.Image.build ~profile program decisions in
          let other_arch = Analyze.arch_of_model arch ~profile image' in
          let b = Analyze.bounds ~arch:other_arch ~profile image' in
          if b.Domain.hi < this.Domain.lo then
            Some
              (Diagnostic.make Diagnostic.Info ~rule:"bound/provably-suboptimal"
                 ~loc:Diagnostic.Program
                 "%s: provably suboptimal — %s's upper bound %d beats this \
                  layout's lower bound %d (certified %d+ cycles away)"
                 label
                 (Ba_core.Align.algo_name other)
                 b.Domain.hi this.Domain.lo
                 (this.Domain.lo - b.Domain.hi))
          else None
        end)
      all_algos
  in
  Diagnostic.sort (wide @ suboptimal)
