(** The [bound/*] lint rules, both Info severity (see DESIGN.md):

    - [bound/provably-suboptimal] — some other alignment algorithm's
      layout has a static {e upper} bound below this layout's static
      {e lower} bound under the cell's architecture: the layout is
      certified suboptimal without running a simulation.
    - [bound/gap-too-wide] — the layout's own interval is too wide to
      support conclusions (expected for dynamic-history predictors, whose
      static domain is nearly vacuous).

    Merged into [branch_align lint] as the [bound] extension stage. *)

val check :
  algo:Ba_core.Align.algo ->
  arch:Ba_core.Cost_model.arch ->
  profile:Ba_cfg.Profile.t ->
  Ba_layout.Image.t ->
  Ba_analysis.Diagnostic.t list
(** [image] must be [algo]'s layout under [arch]; the rule compares it
    against the other three algorithms' layouts rebuilt from the same
    profile. *)
