(** Abstract domains for the static cost-bound analysis.

    Two pieces live here, both pure arithmetic:

    - {b Intervals} of penalty cycles: [\[lo, hi\]] with [0 <= lo <= hi],
      closed under pointwise addition.  An interval abstracts the set of
      penalties a site (or a whole layout) can incur over every execution
      order compatible with the profile's exact outcome counts.

    - {b The 2-bit-counter domain}: given a saturating counter's start
      state and the number of taken / not-taken outcomes it will serve
      (in an unknown interleaving), sound bounds on how many of those
      outcomes it mispredicts.  The transfer functions mirror
      {!Ba_predict.Counter2} exactly — predict at state [>= 2], saturate
      at [0]/[3] — and the unit tests enumerate every interleaving of
      small batches against the real counter to pin both bounds.

    The lower bound is exactly the minimum over interleavings (batching
    one direction then the other is optimal; verified exhaustively).  The
    upper bound is the pairing bound [min (w_t + w_f,
    T_max + N_max)] where each extra taken-mispredict beyond the initial
    allowance consumes a not-taken outcome and vice versa — sound, and
    loose only when both directions are large. *)

type interval = { lo : int; hi : int }

val exact : int -> interval
val make : int -> int -> interval
(** [make lo hi] clamps to [0 <= lo <= hi]. *)

val zero : interval
val add : interval -> interval -> interval
val sum : interval list -> interval
val scale : int -> interval -> interval
val width : interval -> int
val contains : interval -> int -> bool

(** Interval abstraction of one {!Ba_predict.Counter2} cell. *)
module Counter : sig
  val serve_taken : state:int -> int -> int * int
  (** [serve_taken ~state w]: mispredicts and final state after serving
      [w] consecutive taken outcomes from [state]. *)

  val serve_not_taken : state:int -> int -> int * int

  val mispredicts : state:int -> taken:int -> not_taken:int -> interval
  (** Bounds on the number of mispredicted outcomes when the cell serves
      [taken] taken and [not_taken] not-taken outcomes in an arbitrary
      order, starting from [state]. *)
end
