type interval = { lo : int; hi : int }

let max0 x = if x > 0 then x else 0

let make lo hi =
  let lo = max0 lo in
  { lo; hi = max lo hi }

let exact x = make x x
let zero = { lo = 0; hi = 0 }
let add a b = { lo = a.lo + b.lo; hi = a.hi + b.hi }
let sum l = List.fold_left add zero l
let scale k i = make (k * i.lo) (k * i.hi)
let width i = i.hi - i.lo
let contains i x = i.lo <= x && x <= i.hi

module Counter = struct
  (* The state space is Counter2's: 0..3, predict taken at >= 2, saturating
     +/-1 updates.  The initial state of every structure in lib/predict is
     Counter2.initial (weakly not-taken); BTB allocations install
     Counter2.strongly_taken.  Both are threaded in by the analyzer. *)

  let serve_taken ~state w = (min w (max0 (2 - state)), min 3 (state + w))
  let serve_not_taken ~state w = (min w (max0 (state - 1)), max0 (state - w))

  let mispredicts ~state ~taken ~not_taken =
    (* Minimum: batching is optimal — serve one direction to saturation,
       then the other; take the better of the two orders.  Exhaustively
       equal to the true minimum over all interleavings (test_bound). *)
    let tn =
      let m1, s1 = serve_taken ~state taken in
      m1 + fst (serve_not_taken ~state:s1 not_taken)
    in
    let nt =
      let m1, s1 = serve_not_taken ~state not_taken in
      m1 + fst (serve_taken ~state:s1 taken)
    in
    (* Maximum: a taken outcome mispredicts only at state <= 1; past the
       initial allowance [max0 (2 - state)] each such visit needs one
       not-taken outcome to drag the counter back down, and symmetrically
       for not-taken mispredicts.  Pair them off. *)
    let t_max = min taken (not_taken + max0 (2 - state)) in
    let n_max = min not_taken (taken + max0 (state - 1)) in
    make (min tn nt) (min (taken + not_taken) (t_max + n_max))
end
