open Ba_layout
open Ba_predict
open Ba_conflict
module Bep = Ba_sim.Bep

type row = {
  proc : Ba_ir.Term.proc_id;
  block : Ba_ir.Term.block_id;
  pc : int;
  pooled : int;
  weight : int;
  what : string;
  penalty : Domain.interval;
}

type t = {
  arch : Bep.arch;
  rows : row list;
  extra_lo : int;
  total : Domain.interval;
}

let m_analyses = Ba_obs.Counter.make ~unit_:"runs" "bound.analyses"
let m_sites = Ba_obs.Counter.make ~unit_:"sites" "bound.sites"
let m_lower = Ba_obs.Counter.make ~unit_:"cycles" "bound.lower_cycles"
let m_upper = Ba_obs.Counter.make ~unit_:"cycles" "bound.upper_cycles"

(* The four transfer-function families.  Gshare, GAg and PAg all index
   their pattern table through dynamic history state, so no static grouping
   of sites is sound for them; they share the near-vacuous [Dyn] domain. *)
type domain_kind =
  | Rule of Static_rule.t
  | Table of int  (* direct-indexed PHT, entry count *)
  | Dyn
  | Buffer of int * int  (* entries, assoc *)

let domain_of = function
  | Bep.Static_fallthrough -> Rule Static_rule.Fallthrough
  | Bep.Static_btfnt -> Rule Static_rule.Btfnt
  | Bep.Static_likely bits -> Rule (Static_rule.Likely (Likely_bits.hint bits))
  | Bep.Pht_direct { entries } -> Table entries
  | Bep.Pht_gshare _ | Bep.Pht_global _ | Bep.Pht_local _ -> Dyn
  | Bep.Btb_arch { entries; assoc } -> Buffer (entries, assoc)

let max0 x = if x > 0 then x else 0

(* Conditional-branch cost from a mispredict interval, static/PHT pricing:
   a taken execution costs a misfetch when predicted and a mispredict when
   not; a not-taken execution costs a mispredict when predicted taken and
   nothing otherwise.  With [m] total mispredicts free to fall on either
   leg, the cheapest assignment puts them on taken executions (upgrading a
   misfetch, net [mp - mf] each) and the dearest on not-taken ones. *)
let cond_identity ~mf ~mp ~w_t ~w_f (m : Domain.interval) =
  let m_lo = min m.Domain.lo (w_t + w_f) and m_hi = min m.Domain.hi (w_t + w_f) in
  let lo = (mf * w_t) + ((mp - mf) * min m_lo w_t) + (mp * max0 (m_lo - w_t)) in
  let on_fall = min m_hi w_f in
  let hi = (mf * w_t) + (mp * on_fall) + ((mp - mf) * (m_hi - on_fall)) in
  Domain.make lo hi

let analyze ?(penalties = Bep.default_penalties) ?(return_stack_depth = 32)
    ~arch ~profile image =
  Ba_obs.Span.with_ "bound" @@ fun () ->
  let mf = penalties.Bep.misfetch and mp = penalties.Bep.mispredict in
  let summary = Site.extract ~profile image in
  let bases = image.Image.bases in
  let main = image.Image.program.Ba_ir.Program.main in
  let domain = domain_of arch in
  (* Call-continuation jump weights are recorded once per call, executed
     once per return: the shortfall is the frames still open when the run
     ends, bounded by the static call-chain depth.  Unbounded (recursive)
     call graphs get no credit. *)
  let cont_slack =
    match summary.Site.ras_bound with Some b -> b | None -> max_int
  in
  (* Every architecture shares the return stack: when the static call chain
     fits the stack, every pop matches its push, so non-main returns are
     exactly correct and main's final return pops an empty stack. *)
  let ras_exact =
    match summary.Site.ras_bound with
    | Some b -> b <= return_stack_depth
    | None -> false
  in
  (* BTB sets that can never evict: at most [assoc] allocating sites map
     there, and invalid ways lose LRU ties, so allocations only fill. *)
  let conflicted =
    match domain with
    | Buffer (entries, assoc) ->
      let tbl = Hashtbl.create 16 in
      (match
         Analyze.of_summary
           ~suite:[ Structure.Btb { entries; assoc } ]
           ~bases summary
       with
      | [ { Analyze.body = Analyze.Map m; _ } ] ->
        List.iter (fun c -> Hashtbl.replace tbl c.Analyze.index ()) m.Analyze.conflicts
      | _ -> ());
      tbl
    | _ -> Hashtbl.create 1
  in
  let rows = ref [] in
  let emit ?(pooled = 1) ~(site : Site.t) ~pc ~weight what penalty =
    rows :=
      { proc = site.Site.proc; block = site.Site.block; pc; pooled; weight;
        what; penalty }
      :: !rows
  in
  (* Direct-PHT pooling: aliased conditionals share one counter, so their
     outcome batches must be bounded jointly; each group is one row. *)
  let pht_groups : (int, int * int * Site.t * int) Hashtbl.t = Hashtbl.create 64 in
  let ret_penalty (site : Site.t) w =
    if ras_exact then
      if site.Site.proc = main then Domain.exact (mp * w) else Domain.zero
    else Domain.make 0 (mp * w)
  in
  List.iter
    (fun (site : Site.t) ->
      let w = site.Site.weight in
      if w > 0 then begin
        let pc = bases.(site.Site.proc) + site.Site.offset in
        match (site.Site.kind, domain) with
        | Site.Ret, _ -> emit ~site ~pc ~weight:w "ret" (ret_penalty site w)
        | Site.Cond { taken_on; w_true; w_false; taken_off }, _ -> begin
          let w_t = if taken_on then w_true else w_false in
          let w_f = w - w_t in
          match domain with
          | Rule rule ->
            let taken_target = bases.(site.Site.proc) + taken_off in
            let cost =
              if Static_rule.predict_taken rule ~pc ~taken_target then
                (mf * w_t) + (mp * w_f)
              else mp * w_t
            in
            emit ~site ~pc ~weight:w "cond" (Domain.exact cost)
          | Table entries ->
            let idx = Pht.direct_index ~entries ~pc in
            let t0, f0, s0, n0 =
              match Hashtbl.find_opt pht_groups idx with
              | Some g -> g
              | None -> (0, 0, site, 0)
            in
            Hashtbl.replace pht_groups idx (t0 + w_t, f0 + w_f, s0, n0 + 1)
          | Dyn ->
            emit ~site ~pc ~weight:w "cond"
              (Domain.make (mf * w_t) (mp * w))
          | Buffer (entries, assoc) ->
            (* A BTB hit on a correctly-predicted direction is free; every
               error is a full mispredict.  The first taken execution
               always misses (nothing else allocates this tag). *)
            if w_t = 0 then emit ~site ~pc ~weight:w "cond" Domain.zero
            else begin
              let idx = Btb.set_index ~entries ~assoc ~pc in
              let m_hi =
                if Hashtbl.mem conflicted idx then
                  min w (w_t + min w_f (2 * w_t))
                else
                  1
                  + (Domain.Counter.mispredicts
                       ~state:(Counter2.strongly_taken :> int)
                       ~taken:(w_t - 1) ~not_taken:w_f)
                      .Domain.hi
              in
              emit ~site ~pc ~weight:w "cond" (Domain.make mp (mp * m_hi))
            end
        end
        | Site.Jump { cont }, Buffer (entries, assoc) ->
          (* Target and direction are fixed, so a conflict-free set hits on
             every execution after the allocating first one. *)
          let idx = Btb.set_index ~entries ~assoc ~pc in
          let lo_execs = if cont then max0 (w - cont_slack) else w in
          let lo = if lo_execs >= 1 then mf else 0 in
          let hi = if Hashtbl.mem conflicted idx then mf * w else mf in
          emit ~site ~pc ~weight:w (if cont then "jump-cont" else "jump")
            (Domain.make lo hi)
        | Site.Call, Buffer (entries, assoc) ->
          let idx = Btb.set_index ~entries ~assoc ~pc in
          let hi = if Hashtbl.mem conflicted idx then mf * w else mf in
          emit ~site ~pc ~weight:w "call" (Domain.make mf hi)
        | Site.Jump { cont }, _ ->
          let lo = if cont then mf * max0 (w - cont_slack) else mf * w in
          emit ~site ~pc ~weight:w (if cont then "jump-cont" else "jump")
            (Domain.make lo (mf * w))
        | Site.Call, _ -> emit ~site ~pc ~weight:w "call" (Domain.exact (mf * w))
        | Site.Switch { live_targets }, Buffer (entries, assoc) ->
          let idx = Btb.set_index ~entries ~assoc ~pc in
          let k = max 1 live_targets in
          if (not (Hashtbl.mem conflicted idx)) && k = 1 then
            emit ~site ~pc ~weight:w "switch" (Domain.exact mp)
          else emit ~site ~pc ~weight:w "switch" (Domain.make (mp * k) (mp * w))
        | Site.Switch _, _ ->
          emit ~site ~pc ~weight:w "switch" (Domain.exact (mp * w))
        | Site.Vcall, Buffer _ ->
          emit ~site ~pc ~weight:w "vcall" (Domain.make mp (mp * w))
        | Site.Vcall, _ ->
          emit ~site ~pc ~weight:w "vcall" (Domain.exact (mp * w))
      end)
    summary.Site.sites;
  (* Flush the pooled PHT groups: the shared counter starts weakly
     not-taken and serves the group's joint outcome batches in trace
     order, which the counter domain brackets over every interleaving. *)
  Hashtbl.fold (fun idx g acc -> (idx, g) :: acc) pht_groups []
  |> List.sort compare
  |> List.iter (fun (_, (w_t, w_f, site, n)) ->
         let m =
           Domain.Counter.mispredicts
             ~state:(Counter2.initial :> int)
             ~taken:w_t ~not_taken:w_f
         in
         let pc = bases.(site.Site.proc) + site.Site.offset in
         emit ~pooled:n ~site ~pc ~weight:(w_t + w_f)
           (if n = 1 then "cond" else "cond-pool")
           (cond_identity ~mf ~mp ~w_t ~w_f m));
  (* Whole-layout supplement under dynamic-history tables: every pattern
     counter starts at or below weakly-not-taken and only taken
     conditionals raise one, so the program's first taken conditional
     execution is a guaranteed mispredict — the per-site bound priced it
     as a misfetch. *)
  let any_taken_cond =
    List.exists
      (fun (s : Site.t) ->
        match s.Site.kind with
        | Site.Cond _ -> s.Site.taken_weight > 0
        | _ -> false)
      summary.Site.sites
  in
  let extra_lo = match domain with Dyn when any_taken_cond -> mp - mf | _ -> 0 in
  let rows =
    List.sort (fun a b -> compare (a.proc, a.pc, a.what) (b.proc, b.pc, b.what)) !rows
  in
  let site_total = Domain.sum (List.map (fun r -> r.penalty) rows) in
  let total =
    Domain.make
      (min (site_total.Domain.lo + extra_lo) site_total.Domain.hi)
      site_total.Domain.hi
  in
  Ba_obs.Counter.incr m_analyses;
  Ba_obs.Counter.add m_sites (List.length summary.Site.sites);
  Ba_obs.Counter.add m_lower total.Domain.lo;
  Ba_obs.Counter.add m_upper total.Domain.hi;
  { arch; rows; extra_lo; total }

let bounds ?penalties ?return_stack_depth ~arch ~profile image =
  (analyze ?penalties ?return_stack_depth ~arch ~profile image).total

(* The harness's canonical simulated architecture for each cost-model arch;
   LIKELY hint bits are image-derived, exactly as Harness.run_image builds
   them. *)
let arch_of_model model ~profile image =
  match model with
  | Ba_core.Cost_model.Fallthrough -> Bep.Static_fallthrough
  | Ba_core.Cost_model.Btfnt -> Bep.Static_btfnt
  | Ba_core.Cost_model.Likely ->
    Bep.Static_likely (Likely_bits.build image profile)
  | Ba_core.Cost_model.Pht -> Bep.Pht_direct { entries = 4096 }
  | Ba_core.Cost_model.Btb -> Bep.Btb_arch { entries = 256; assoc = 4 }
