open Ba_ir
open Ba_layout
open Ba_analysis

type real =
  | W_none
  | W_jump
  | W_cond of { taken_leg : bool; taken_backward : bool; jump : bool }
  | W_switch
  | W_call of { cont_jump : bool }
  | W_vcall of { cont_jump : bool }
  | W_ret
  | W_halt

type witness = { position : int array; reals : real array }

(* A float-array equality that treats the arrays as data tables, not
   measurements: lowering copies weights verbatim, so exact comparison is
   the correct check. *)
let same_floats a b =
  Array.length a = Array.length b && Array.for_all2 ( = ) a b

let verify ~proc_id (linear : Linear.t) =
  let p = linear.Linear.proc in
  let proc_name = p.Proc.name in
  let n = Proc.n_blocks p in
  let blocks = linear.Linear.blocks in
  let diags = ref [] in
  let proc_err ~rule fmt =
    Printf.ksprintf
      (fun message ->
        diags :=
          { Diagnostic.severity = Diagnostic.Error; rule;
            loc = Diagnostic.Proc { proc = proc_id; proc_name }; message }
          :: !diags)
      fmt
  in
  let at pos ~rule fmt =
    Printf.ksprintf
      (fun message ->
        diags :=
          { Diagnostic.severity = Diagnostic.Error; rule;
            loc = Diagnostic.Layout_pos { proc = proc_id; proc_name; pos };
            message }
          :: !diags)
      fmt
  in
  if Array.length blocks <> n then begin
    proc_err ~rule:"bisim/block-count"
      "%d layout blocks for a %d-block procedure: code was dropped or duplicated"
      (Array.length blocks) n;
    Error (Diagnostic.sort !diags)
  end
  else begin
    (* 1. The relation block <-> position must be a bijection. *)
    let position = Array.make n (-1) in
    Array.iteri
      (fun i (lb : Linear.lblock) ->
        let b = lb.Linear.src in
        if b < 0 || b >= n then
          at i ~rule:"bisim/src-range" "layout block claims source b%d, not a block" b
        else if position.(b) >= 0 then
          at i ~rule:"bisim/src-permutation"
            "source b%d appears at positions %d and %d" b position.(b) i
        else position.(b) <- i)
      blocks;
    Array.iteri
      (fun b pos ->
        if pos < 0 then
          proc_err ~rule:"bisim/src-permutation" "semantic block b%d has no layout block"
            b)
      position;
    if !diags <> [] then Error (Diagnostic.sort !diags)
    else begin
      let reals = Array.make n W_none in
      (* 2. Entry pinning: the procedure's entry point is its first address. *)
      if blocks.(0).Linear.src <> Proc.entry then
        at 0 ~rule:"bisim/entry-position"
          "entry block b%d sits at layout position %d, not at the procedure's \
           first address"
          Proc.entry
          position.(Proc.entry);
      (* 3. Straight-line code preserved block for block. *)
      Array.iteri
        (fun i (lb : Linear.lblock) ->
          let want = (Proc.block p lb.Linear.src).Block.insns in
          if lb.Linear.insns <> want then
            at i ~rule:"bisim/block-size"
              "b%d lowered with %d straight-line instructions, the IR has %d"
              lb.Linear.src lb.Linear.insns want)
        blocks;
      (* 4. The address map: strictly increasing runs, so address order
         and position order agree and branch displacements are
         meaningful.  A single upward gap is allowed — the
         inter-procedural hot/cold split parks the cold suffix in a
         trailing section — but only after a block that cannot fall
         through: an implicit fall into an address gap would be control
         flow the addresses do not describe. *)
      let cursor = ref blocks.(0).Linear.addr in
      let gaps = ref 0 in
      Array.iteri
        (fun i (lb : Linear.lblock) ->
          if lb.Linear.addr <> !cursor then begin
            if lb.Linear.addr < !cursor then
              at i ~rule:"bisim/address-map"
                "block at address %d but the preceding code ends at %d"
                lb.Linear.addr !cursor
            else begin
              incr gaps;
              if !gaps > 1 then
                at i ~rule:"bisim/address-map"
                  "second address gap at %d (one hot/cold split is the most \
                   a procedure may carry)"
                  lb.Linear.addr
              else if Linear.falls_through blocks.(i - 1) then
                at i ~rule:"bisim/cold-fallthrough"
                  "cold section starts at address %d but the block before \
                   the split falls through"
                  lb.Linear.addr
            end
          end;
          cursor := lb.Linear.addr + Linear.block_size lb)
        blocks;
      (* 5. Transition matching: for every related pair (b, pos), the
         outcome-labelled transfers of the two sides coincide. *)
      let dest_block (tr : Realize.transition) = blocks.(tr.Realize.dest).Linear.src in
      let expect_edge i ~label_name (tr : Realize.transition) want =
        let got = dest_block tr in
        if got <> want then
          at i ~rule:"bisim/edge-mismatch"
            "%s edge of b%d leads to b%d in the linear code, the CFG says b%d"
            label_name blocks.(i).Linear.src got want
      in
      Array.iteri
        (fun i (lb : Linear.lblock) ->
          let b = lb.Linear.src in
          let term = (Proc.block p b).Block.term in
          let kind_mismatch () =
            at i ~rule:"bisim/kind-mismatch"
              "b%d lowered as %s but its IR terminator is a %s"
              b
              (match lb.Linear.term with
              | Linear.Lnone -> "fall-through"
              | Linear.Ljump _ -> "jump"
              | Linear.Lcond _ -> "conditional"
              | Linear.Lswitch _ -> "switch"
              | Linear.Lcall _ -> "call"
              | Linear.Lvcall _ -> "vcall"
              | Linear.Lret -> "return"
              | Linear.Lhalt -> "halt")
              (Term.kind_name term)
          in
          match Realize.transitions linear i with
          | Error e -> at i ~rule:(match e with
              | Realize.Off_end -> "bisim/off-end"
              | Realize.Bad_target _ -> "bisim/target-range")
              "%s" (Realize.error_message e)
          | Ok trans -> (
            match (lb.Linear.term, term) with
            | (Linear.Lnone | Linear.Ljump _), Term.Jump d -> (
              match trans with
              | [ tr ] ->
                expect_edge i ~label_name:"jump" tr d;
                reals.(i) <-
                  (match tr.Realize.path with
                  | Realize.Adjacent -> W_none
                  | Realize.Hops _ -> W_jump)
              | _ ->
                at i ~rule:"bisim/edge-mismatch"
                  "jump block b%d realises %d transitions, expected exactly one" b
                  (List.length trans))
            | Linear.Lcond { taken_on; _ }, Term.Cond { on_true; on_false; _ } -> (
              let find outcome =
                List.find_opt
                  (fun tr -> tr.Realize.label = Realize.On_cond outcome)
                  trans
              in
              match (find true, find false) with
              | Some t_true, Some t_false ->
                expect_edge i ~label_name:"true" t_true on_true;
                expect_edge i ~label_name:"false" t_false on_false;
                let taken = if taken_on then t_true else t_false in
                let other = if taken_on then t_false else t_true in
                let jump =
                  match other.Realize.path with
                  | Realize.Adjacent -> false
                  | Realize.Hops _ -> true
                in
                reals.(i) <-
                  W_cond
                    {
                      taken_leg = taken_on;
                      taken_backward = taken.Realize.dest <= i;
                      jump;
                    }
              | _ ->
                at i ~rule:"bisim/edge-mismatch"
                  "conditional b%d does not realise both semantic outcomes" b)
            | ( Linear.Lswitch { positions; weights },
                Term.Switch { targets } ) ->
              if Array.length positions <> Array.length targets then
                at i ~rule:"bisim/table-mismatch"
                  "switch b%d lowered with %d cases, the IR has %d" b
                  (Array.length positions) (Array.length targets)
              else begin
                List.iter
                  (fun tr ->
                    match tr.Realize.label with
                    | Realize.On_case k ->
                      expect_edge i
                        ~label_name:(Printf.sprintf "case %d" k)
                        tr
                        (fst targets.(k))
                    | _ -> ())
                  trans;
                if not (same_floats weights (Array.map snd targets)) then
                  at i ~rule:"bisim/table-mismatch"
                    "switch b%d carries case weights that differ from the IR" b;
                reals.(i) <- W_switch
              end
            | ( Linear.Lcall { callee; _ },
                Term.Call { callee = ir_callee; next } ) -> (
              if callee <> ir_callee then
                at i ~rule:"bisim/table-mismatch"
                  "call b%d targets procedure p%d, the IR calls p%d" b callee
                  ir_callee;
              match trans with
              | [ tr ] ->
                expect_edge i ~label_name:"continuation" tr next;
                reals.(i) <-
                  W_call
                    {
                      cont_jump =
                        (match tr.Realize.path with
                        | Realize.Adjacent -> false
                        | Realize.Hops _ -> true);
                    }
              | _ ->
                at i ~rule:"bisim/edge-mismatch"
                  "call b%d realises %d continuations, expected exactly one" b
                  (List.length trans))
            | ( Linear.Lvcall { callees; weights; _ },
                Term.Vcall { callees = ir_callees; next } ) -> (
              if
                not
                  (Array.length callees = Array.length ir_callees
                  && Array.for_all2 ( = ) callees (Array.map fst ir_callees)
                  && same_floats weights (Array.map snd ir_callees))
              then
                at i ~rule:"bisim/table-mismatch"
                  "vcall b%d carries a dispatch table that differs from the IR" b;
              match trans with
              | [ tr ] ->
                expect_edge i ~label_name:"continuation" tr next;
                reals.(i) <-
                  W_vcall
                    {
                      cont_jump =
                        (match tr.Realize.path with
                        | Realize.Adjacent -> false
                        | Realize.Hops _ -> true);
                    }
              | _ ->
                at i ~rule:"bisim/edge-mismatch"
                  "vcall b%d realises %d continuations, expected exactly one" b
                  (List.length trans))
            | Linear.Lret, Term.Ret -> reals.(i) <- W_ret
            | Linear.Lhalt, Term.Halt -> reals.(i) <- W_halt
            | _, _ -> kind_mismatch ()))
        blocks;
      (* 6. No executable path added: every layout block is reachable from
         the entry through the static transfers just checked. *)
      let seen = Array.make n false in
      let rec walk i =
        if not seen.(i) then begin
          seen.(i) <- true;
          List.iter walk (Linear.static_successors linear i)
        end
      in
      walk 0;
      Array.iteri
        (fun i reached ->
          if not reached then
            at i ~rule:"bisim/unreachable-code"
              "layout block for b%d is unreachable from the procedure entry"
              blocks.(i).Linear.src)
        seen;
      if !diags = [] then Ok { position; reals }
      else Error (Diagnostic.sort !diags)
    end
  end
