open Ba_analysis

type t = {
  lint : Run.report;
  bisim : Diagnostic.t list;
  certificates : Certificate.t list;
  cert_diags : Diagnostic.t list;
  audit : Diagnostic.t list;
  verified : bool;
}

let diagnostics t =
  Diagnostic.sort
    (Run.diagnostics t.lint @ t.bisim @ t.cert_diags @ t.audit)

let error_count t =
  let e, _, _ = Diagnostic.count (diagnostics t) in
  e

let verify_image ?pool ?(cert_arches = Ba_core.Cost_model.all_arches)
    ?(audit_arch = Ba_core.Cost_model.Btfnt) ?(audit = true) ?trace ~workload
    ~algo ~profile (image : Ba_layout.Image.t) =
  Ba_obs.Span.with_ "verify" @@ fun () ->
  let program = image.Ba_layout.Image.program in
  let n = Ba_ir.Program.n_procs program in
  let visits p b = Ba_cfg.Profile.visits profile p b in
  let cond_counts p b = Ba_cfg.Profile.cond_counts profile p b in
  let witnesses = Array.make n None in
  let bisim_diags = ref [] in
  for pid = 0 to n - 1 do
    match Bisim.verify ~proc_id:pid image.Ba_layout.Image.linears.(pid) with
    | Ok w -> witnesses.(pid) <- Some w
    | Error diags -> bisim_diags := !bisim_diags @ diags
  done;
  if !bisim_diags <> [] then (Diagnostic.sort !bisim_diags, [], [], [])
  else begin
    let witness pid = Option.get witnesses.(pid) in
    (* Certify one architecture: [(certificate option, diagnostics)].
       Reads only the image, profile and witnesses, so the architectures
       certify independently — and in parallel when a pool is given. *)
    let certify_arch arch =
      let per_proc = Array.make n ("", 0.0) in
      let evaluator = ref 0.0 in
      let failures = ref [] in
      for pid = 0 to n - 1 do
        let linear = image.Ba_layout.Image.linears.(pid) in
        evaluator :=
          !evaluator
          +. Ba_core.Layout_cost.branch_cost ~arch ~visits:(visits pid)
               ~cond_counts:(cond_counts pid) linear;
        match
          Cost_cert.certify ~arch ~visits:(visits pid)
            ~cond_counts:(cond_counts pid) ~proc_id:pid linear (witness pid)
        with
        | Ok cycles ->
          per_proc.(pid) <-
            ((Ba_ir.Program.proc program pid).Ba_ir.Proc.name, cycles)
        | Error diags -> failures := !failures @ diags
      done;
      if !failures <> [] then (None, !failures)
      else
        ( Some
            (Certificate.make ~workload ~algo
               ~arch:(Ba_core.Cost_model.arch_name arch)
               ~code_size:image.Ba_layout.Image.total_size
               ~evaluator_cycles:!evaluator ~per_proc),
          [] )
    in
    let arch_results =
      match pool with
      | Some pool -> Ba_par.Pool.map pool certify_arch cert_arches
      | None -> List.map certify_arch cert_arches
    in
    let certificates = List.filter_map fst arch_results in
    let cert_diags = ref (List.concat_map snd arch_results) in
    let audit_diags =
      if not audit then []
      else begin
        (* With a recorded trace, audit findings also carry simulator-exact
           figures: one Ba_delta.Eval prices, for any candidate decision of
           one procedure, the exact replay penalty of the whole layout. *)
        let sim_for =
          match trace with
          | None -> fun _ -> None
          | Some trace ->
            let base =
              Array.map Audit.canonical_decision image.Ba_layout.Image.linears
            in
            let ev =
              Ba_delta.Eval.create
                ~specs:[| Ba_delta.Eval.spec_of_model audit_arch |]
                profile trace base
            in
            fun pid ->
              Some
                (fun decision ->
                  let ds = Array.copy base in
                  ds.(pid) <- decision;
                  Ba_delta.Eval.cost_arch ev 0 ds)
        in
        List.concat
          (List.init n (fun pid ->
               Audit.check ?sim:(sim_for pid) ~arch:audit_arch
                 ~visits:(visits pid) ~cond_counts:(cond_counts pid)
                 ~proc_id:pid image.Ba_layout.Image.linears.(pid)))
      end
    in
    ([], certificates, Diagnostic.sort !cert_diags, Diagnostic.sort audit_diags)
  end

let has_errors diags = List.exists Diagnostic.is_error diags

let verify_pipeline ?pool ?(arch = Ba_core.Cost_model.Btfnt) ?cert_arches
    ?max_steps ?profile ?trace ?audit ?(interproc = false) ~algo
    (program : Ba_ir.Program.t) =
  let unverified lint =
    { lint; bisim = []; certificates = []; cert_diags = []; audit = [];
      verified = false }
  in
  let lint_report stages =
    { Run.program_name = program.Ba_ir.Program.name; algo; arch; stages }
  in
  let ir_diags = Check_ir.check_program program in
  if has_errors ir_diags then unverified (lint_report [ (Run.Ir, ir_diags) ])
  else begin
    let profile =
      match profile with
      | Some p ->
        if Ba_cfg.Profile.program p != program then
          invalid_arg "Ba_verify.Run.verify_pipeline: profile of a different program";
        p
      | None -> Ba_exec.Engine.profile_program ?max_steps program
    in
    let profile_diags = Check_profile.check profile in
    let decisions = Ba_core.Align.align_program algo ~arch profile in
    let layout_stages = Run.check_layout ~profile program decisions in
    let lint =
      lint_report
        ((Run.Ir, ir_diags) :: (Run.Profile, profile_diags) :: layout_stages)
    in
    (* Decision errors mean lowering was skipped (and would raise). *)
    if not (List.mem_assoc Run.Linear lint.Run.stages) then unverified lint
    else begin
      (* In interproc mode the per-procedure bisimulation proves each
         address run; the whole-image address map (stitched procedure
         order, one cold section, no overlaps) is Check_image's job, so
         run it on the stitched image too and fold its findings in. *)
      let image, image_diags =
        if interproc then begin
          let ip = Ba_layout.Image.build_interproc ~profile program decisions in
          ( ip.Ba_layout.Image.image,
            Check_image.check ip.Ba_layout.Image.image )
        end
        else (Ba_layout.Image.build ~profile program decisions, [])
      in
      let bisim, certificates, cert_diags, audit =
        verify_image ?pool ?cert_arches ~audit_arch:arch ?trace ?audit
          ~workload:program.Ba_ir.Program.name
          ~algo:(Ba_core.Align.algo_name algo) ~profile image
      in
      let bisim = Diagnostic.sort (image_diags @ bisim) in
      {
        lint; bisim; certificates; cert_diags; audit;
        verified = bisim = [] && cert_diags = [] && certificates <> [];
      }
    end
  end
