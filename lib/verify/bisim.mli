(** Translation validation: block-level bisimulation between a procedure's
    CFG and its lowered linear code.

    [verify] proves, purely statically, that the linear code computes what
    the IR computes: it relates every layout block to its semantic source
    block and checks that the outcome-labelled transitions of the two sides
    coincide — every original edge is realised as a fall-through, a
    (possibly sense-inverted) taken branch, a single unconditional jump, or
    the fall-then-jump chain of a neither-edge conditional, and the linear
    code has no transition the CFG lacks.  Because both transition systems
    are deterministic given the semantic outcome, and outcome streams are a
    property of the program rather than the layout, matching transitions at
    every related pair is exactly a bisimulation: original and lowered code
    are then step-for-step equivalent on every input, with no interpreter
    run involved.

    The proof deliberately consumes only the IR procedure and the
    {!Ba_layout.Linear.t} block array (terminators and addresses) — not the
    {!Ba_layout.Decision} and never {!Ba_layout.Lower} itself — so it
    validates the lowering rather than re-running it, in the spirit of
    translation validation (certify each output, not the compiler).

    Checks, each with a stable rule id (catalogued in DESIGN.md):

    - [bisim/block-count], [bisim/src-range], [bisim/src-permutation]: the
      relation is a bijection between semantic blocks and layout positions;
    - [bisim/entry-position]: the entry block keeps the first address;
    - [bisim/block-size]: straight-line instruction counts are preserved;
    - [bisim/address-map]: addresses are contiguous in layout order, so
      positions and addresses order identically — with at most one upward
      gap, the inter-procedural layout's hot/cold split;
    - [bisim/cold-fallthrough]: the block before a hot/cold split falls
      through, i.e. control would run into the address gap;
    - [bisim/off-end], [bisim/target-range]: no transfer leaves the code;
    - [bisim/kind-mismatch]: lowered terminators correspond to IR kinds;
    - [bisim/edge-mismatch]: a CFG edge dropped, added, or retargeted;
    - [bisim/table-mismatch]: switch / vcall targets, callees or weights
      differ from the IR;
    - [bisim/unreachable-code]: layout blocks unreachable from the entry
      (executable code no path can justify). *)

type real =
  | W_none  (** jump / continuation realised as pure adjacency *)
  | W_jump  (** unconditional branch emitted *)
  | W_cond of { taken_leg : bool; taken_backward : bool; jump : bool }
      (** conditional: the semantic outcome [taken_leg] is the taken leg,
          branching backward iff [taken_backward]; [jump] when the other
          leg runs through an inserted unconditional jump *)
  | W_switch
  | W_call of { cont_jump : bool }
  | W_vcall of { cont_jump : bool }
  | W_ret
  | W_halt

type witness = {
  position : int array;  (** semantic block id -> layout position *)
  reals : real array;  (** per layout position: how the terminator lowered *)
}
(** The constructive content of a successful validation; the cost
    certifier prices layouts from this alone. *)

val verify :
  proc_id:Ba_ir.Term.proc_id ->
  Ba_layout.Linear.t ->
  (witness, Ba_analysis.Diagnostic.t list) result
(** [Ok] iff the linear code is observationally equivalent to
    [linear.proc]; [Error] carries at least one error-severity
    diagnostic. *)
