type t = {
  workload : string;
  algo : string;
  arch : string;
  procs : int;
  code_size : int;
  branch_cycles : float;
  evaluator_cycles : float;
  per_proc : (string * float) array;
  digest : string;
}

let fnv1a64 = Ba_util.Fnv.digest64

(* The canonical string the digest covers.  Cycle counts are printed with
   six decimals so the digest is stable across summation-order-preserving
   rebuilds but sensitive to any real change. *)
let canonical c =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%s|%s|%s|%d|%d|%.6f|%.6f" c.workload c.algo c.arch c.procs
       c.code_size c.branch_cycles c.evaluator_cycles);
  Array.iter
    (fun (name, cycles) ->
      Buffer.add_string buf (Printf.sprintf "|%s=%.6f" name cycles))
    c.per_proc;
  Buffer.contents buf

let make ~workload ~algo ~arch ~code_size ~evaluator_cycles ~per_proc =
  let branch_cycles = Array.fold_left (fun acc (_, c) -> acc +. c) 0.0 per_proc in
  let c =
    {
      workload; algo; arch; procs = Array.length per_proc; code_size;
      branch_cycles; evaluator_cycles; per_proc; digest = "";
    }
  in
  { c with digest = fnv1a64 (canonical c) }

let digest_ok c = String.equal c.digest (fnv1a64 (canonical c))

let to_json c =
  let open Ba_util.Json in
  Obj
    [
      ("workload", String c.workload);
      ("algo", String c.algo);
      ("arch", String c.arch);
      ("procs", Int c.procs);
      ("code_size", Int c.code_size);
      ("branch_cycles", Float c.branch_cycles);
      ("evaluator_cycles", Float c.evaluator_cycles);
      ( "per_proc",
        List
          (Array.to_list
             (Array.map
                (fun (name, cycles) ->
                  Obj [ ("proc", String name); ("cycles", Float cycles) ])
                c.per_proc)) );
      ("digest", String c.digest);
    ]

let pp ppf c =
  Fmt.pf ppf "%s/%s/%s: %.1f cycles over %d procs (evaluator %.1f, digest %s)"
    c.workload c.algo c.arch c.branch_cycles c.procs c.evaluator_cycles c.digest
