open Ba_layout

type label = On_next | On_cond of bool | On_case of int

type path = Adjacent | Hops of int list

type transition = { label : label; dest : int; path : path }

type error = Off_end | Bad_target of { what : string; target : int }

let error_message = function
  | Off_end -> "control falls through past the last layout block"
  | Bad_target { what; target } ->
    Printf.sprintf "%s targets layout position %d, outside the procedure" what
      target

exception Bad of error

let transitions (linear : Linear.t) i =
  let n = Array.length linear.Linear.blocks in
  let lb = linear.Linear.blocks.(i) in
  let next () = if i + 1 < n then i + 1 else raise (Bad Off_end) in
  let checked what t =
    if t < 0 || t >= n then raise (Bad (Bad_target { what; target = t })) else t
  in
  let cont_transition what cont =
    match cont with
    | Linear.Fall -> { label = On_next; dest = next (); path = Adjacent }
    | Linear.Jump_to t ->
      {
        label = On_next;
        dest = checked what t;
        path = Hops [ Linear.inserted_jump_pc lb ];
      }
  in
  try
    Ok
      (match lb.Linear.term with
      | Linear.Lnone -> [ { label = On_next; dest = next (); path = Adjacent } ]
      | Linear.Ljump t ->
        [
          {
            label = On_next;
            dest = checked "unconditional jump" t;
            path = Hops [ Linear.branch_pc lb ];
          };
        ]
      | Linear.Lcond { taken_pos; taken_on; inserted_jump } ->
        let taken =
          {
            label = On_cond taken_on;
            dest = checked "conditional branch" taken_pos;
            path = Hops [ Linear.branch_pc lb ];
          }
        in
        let fall =
          match inserted_jump with
          | None ->
            (* The branch instruction executes not-taken, then control is
               adjacent; no fetch redirect happens. *)
            { label = On_cond (not taken_on); dest = next (); path = Adjacent }
          | Some j ->
            {
              label = On_cond (not taken_on);
              dest = checked "inserted jump" j;
              path = Hops [ Linear.branch_pc lb; Linear.inserted_jump_pc lb ];
            }
        in
        [ taken; fall ]
      | Linear.Lswitch { positions; _ } ->
        Array.to_list
          (Array.mapi
             (fun k t ->
               {
                 label = On_case k;
                 dest = checked (Printf.sprintf "switch case %d" k) t;
                 path = Hops [ Linear.branch_pc lb ];
               })
             positions)
      | Linear.Lcall { cont; _ } -> [ cont_transition "call continuation" cont ]
      | Linear.Lvcall { cont; _ } -> [ cont_transition "vcall continuation" cont ]
      | Linear.Lret | Linear.Lhalt -> [])
  with Bad e -> Error e
