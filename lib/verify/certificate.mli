(** Cost certificates.

    A certificate is the auditable record a successful verification emits
    per (workload, algorithm, architecture): the statically recomputed
    expected branch cost, the evaluator's cross-checked figure, per-procedure
    detail, and a content digest over the canonical rendering so a stored
    certificate can later be checked for tampering or drift ("signed off"
    in the weak, integrity-checking sense — FNV-1a is not cryptographic).

    Canonical form (also the [to_json] layout):

    {v
    workload | algo | arch | procs | code_size
    branch_cycles      — certifier's total (sum of per_proc)
    evaluator_cycles   — Ba_core.Layout_cost's total
    per_proc           — (procedure name, certified cycles) in program order
    digest             — fnv1a64 over all of the above, hex
    v} *)

type t = {
  workload : string;
  algo : string;
  arch : string;
  procs : int;
  code_size : int;
  branch_cycles : float;
  evaluator_cycles : float;
  per_proc : (string * float) array;
  digest : string;
}

val make :
  workload:string ->
  algo:string ->
  arch:string ->
  code_size:int ->
  evaluator_cycles:float ->
  per_proc:(string * float) array ->
  t
(** Totals [branch_cycles] from [per_proc] and computes the digest. *)

val fnv1a64 : string -> string
(** 64-bit FNV-1a of a string, as 16 lower-case hex digits. *)

val digest_ok : t -> bool
(** Recompute the digest from the record's fields and compare — the check a
    consumer of a stored certificate performs. *)

val to_json : t -> Ba_util.Json.t
val pp : Format.formatter -> t -> unit
