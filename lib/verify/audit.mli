(** Optimality audit: statically detect locally improvable layouts.

    A verified layout can still be a bad layout.  The auditor prices, under
    one architectural cost model, every member of a small neighbourhood of
    the given layout and reports each variant that lowers expected cost —
    evidence the aligner left cycles on the table.  Three move classes, one
    rule id each (all Info severity: a missed local improvement is a
    finding about quality, not correctness):

    - [audit/adjacent-swap] — exchanging two adjacent layout blocks
      (the entry block is never moved);
    - [audit/jump-leg-flip] — a neither-edge conditional routing the other
      leg through its inserted jump (the branch-sense flip);
    - [audit/jump-elision] — dropping a conditional's inserted jump and
      letting one leg fall through;
    - [audit/neither-edge] — the reverse: forcing the fall-then-jump
      lowering on a conditional currently aligned to one edge (the
      paper's §4 loop transformation).

    Every finding quantifies its saving in expected cycles; each variant
    is priced with {!Ba_delta.Model}, bit-equal to re-lowering and pricing
    it with {!Ba_core.Layout_cost}, so the deltas are achievable, not
    estimates.  When a simulation oracle [sim] is given (decision ->
    penalty cycles of the whole-program layout with this procedure's
    decision replaced — see {!Ba_delta.Eval}), each finding also reports
    the simulator-exact cycle change of its move. *)

val canonical_decision : Ba_layout.Linear.t -> Ba_layout.Decision.t
(** The decision whose lowering reproduces the given linear code: the
    source permutation, with every inserted-jump conditional pinned to its
    current jump leg. *)

val check :
  ?eps:float ->
  ?sim:(Ba_layout.Decision.t -> int) ->
  arch:Ba_core.Cost_model.arch ->
  ?table:Ba_core.Cost_model.table ->
  visits:(Ba_ir.Term.block_id -> int) ->
  cond_counts:(Ba_ir.Term.block_id -> int * int) ->
  proc_id:Ba_ir.Term.proc_id ->
  Ba_layout.Linear.t ->
  Ba_analysis.Diagnostic.t list
(** Findings for every strictly improving move (saving > [eps], default
    1e-6 cycles), sorted.  The input must have passed {!Bisim.verify};
    behaviour on unverified code is unspecified. *)
