open Ba_ir
open Ba_layout
open Ba_core
open Ba_analysis

(* Reconstruct a decision whose lowering reproduces the given linear code:
   the order is the source permutation, and every conditional that carries
   an inserted jump is pinned to its current jump leg (forcing is idempotent
   where the jump was already demanded by non-adjacency). *)
let canonical_decision (linear : Linear.t) =
  let order = Array.map (fun lb -> lb.Linear.src) linear.Linear.blocks in
  let neither = Array.make (Array.length order) None in
  Array.iter
    (fun (lb : Linear.lblock) ->
      match lb.Linear.term with
      | Linear.Lcond { taken_on; inserted_jump = Some _; _ } ->
        neither.(lb.Linear.src) <-
          Some (if taken_on then Decision.Jump_on_false else Decision.Jump_on_true)
      | _ -> ())
    linear.Linear.blocks;
  Decision.of_order ~neither order

let check ?(eps = 1e-6) ~arch ?table ~visits ~cond_counts ~proc_id
    (linear : Linear.t) =
  let p = linear.Linear.proc in
  let proc_name = p.Proc.name in
  let n = Array.length linear.Linear.blocks in
  let base_decision = canonical_decision linear in
  let cost_of decision =
    let variant = Lower.lower ~cond_counts p decision in
    Layout_cost.branch_cost ~arch ?table ~visits ~cond_counts variant
  in
  let base = cost_of base_decision in
  let diags = ref [] in
  let info pos ~rule fmt =
    Printf.ksprintf
      (fun message ->
        diags :=
          { Diagnostic.severity = Diagnostic.Info; rule;
            loc = Diagnostic.Layout_pos { proc = proc_id; proc_name; pos };
            message }
          :: !diags)
      fmt
  in
  let arch_name = Cost_model.arch_name arch in
  let saving decision = base -. cost_of decision in
  (* Adjacent-chain swaps; position 0 is the pinned entry. *)
  for i = 1 to n - 2 do
    let gain = saving (Decision.swap_positions base_decision i (i + 1)) in
    if gain > eps then
      info i ~rule:"audit/adjacent-swap"
        "swapping positions %d and %d (b%d and b%d) would save %.1f expected %s \
         cycles"
        i (i + 1)
        base_decision.Decision.order.(i)
        base_decision.Decision.order.(i + 1)
        gain arch_name
  done;
  (* Per-conditional lowering moves. *)
  Array.iteri
    (fun pos (lb : Linear.lblock) ->
      let b = lb.Linear.src in
      match lb.Linear.term with
      | Linear.Lcond { taken_on; inserted_jump = Some _; _ } ->
        let flipped =
          if taken_on then Decision.Jump_on_true else Decision.Jump_on_false
        in
        let gain = saving (Decision.with_neither base_decision b (Some flipped)) in
        if gain > eps then
          info pos ~rule:"audit/jump-leg-flip"
            "routing the %s leg of b%d through its inserted jump instead would \
             save %.1f expected %s cycles"
            (if taken_on then "true" else "false")
            b gain arch_name;
        let gain = saving (Decision.with_neither base_decision b None) in
        if gain > eps then
          info pos ~rule:"audit/jump-elision"
            "eliding the inserted jump of b%d (aligning one edge) would save %.1f \
             expected %s cycles"
            b gain arch_name
      | Linear.Lcond { inserted_jump = None; _ } ->
        List.iter
          (fun leg ->
            let gain = saving (Decision.with_neither base_decision b (Some leg)) in
            if gain > eps then
              info pos ~rule:"audit/neither-edge"
                "forcing the neither-edge lowering of b%d (jump on the %s leg) \
                 would save %.1f expected %s cycles"
                b (Decision.leg_name leg) gain arch_name)
          [ Decision.Jump_on_true; Decision.Jump_on_false ]
      | _ -> ())
    linear.Linear.blocks;
  Diagnostic.sort !diags
