open Ba_ir
open Ba_layout
open Ba_core
open Ba_analysis

(* Reconstruct a decision whose lowering reproduces the given linear code:
   the order is the source permutation, and every conditional that carries
   an inserted jump is pinned to its current jump leg (forcing is idempotent
   where the jump was already demanded by non-adjacency). *)
let canonical_decision (linear : Linear.t) =
  let order = Array.map (fun lb -> lb.Linear.src) linear.Linear.blocks in
  let neither = Array.make (Array.length order) None in
  Array.iter
    (fun (lb : Linear.lblock) ->
      match lb.Linear.term with
      | Linear.Lcond { taken_on; inserted_jump = Some _; _ } ->
        neither.(lb.Linear.src) <-
          Some (if taken_on then Decision.Jump_on_false else Decision.Jump_on_true)
      | _ -> ())
    linear.Linear.blocks;
  Decision.of_order ~neither order

let check ?(eps = 1e-6) ?sim ~arch ?table ~visits ~cond_counts ~proc_id
    (linear : Linear.t) =
  let p = linear.Linear.proc in
  let proc_name = p.Proc.name in
  let n = Array.length linear.Linear.blocks in
  let base_decision = canonical_decision linear in
  (* Every neighbour differs from the base by one local move, so the whole
     neighbourhood is priced by one Ba_delta.Model over the base: each
     candidate costs a window re-lowering instead of a full [Lower.lower]
     pass.  [Model.preview] is bit-equal to pricing the freshly lowered
     variant, so the findings are identical to the historical
     re-lower-everything auditor. *)
  let model =
    Ba_delta.Model.create ~arch ?table ~visits ~cond_counts p base_decision
  in
  let base = Ba_delta.Model.total model in
  let sim_base = match sim with None -> 0 | Some f -> f base_decision in
  let diags = ref [] in
  let info pos ~rule fmt =
    Printf.ksprintf
      (fun message ->
        diags :=
          { Diagnostic.severity = Diagnostic.Info; rule;
            loc = Diagnostic.Layout_pos { proc = proc_id; proc_name; pos };
            message }
          :: !diags)
      fmt
  in
  let arch_name = Cost_model.arch_name arch in
  (* Simulator-exact saving of the variant, appended to the finding when a
     simulation oracle is given: positive = the trace replay really gets
     cheaper by that many penalty cycles. *)
  let sim_suffix decision =
    match sim with
    | None -> ""
    | Some f -> Printf.sprintf " (simulator: %+d cycles)" (sim_base - f decision)
  in
  let saving mv = base -. Ba_delta.Model.preview model mv in
  (* Adjacent-chain swaps; position 0 is the pinned entry. *)
  for i = 1 to n - 2 do
    let gain = saving (Ba_delta.Move.Swap i) in
    if gain > eps then
      info i ~rule:"audit/adjacent-swap"
        "swapping positions %d and %d (b%d and b%d) would save %.1f expected %s \
         cycles%s"
        i (i + 1)
        base_decision.Decision.order.(i)
        base_decision.Decision.order.(i + 1)
        gain arch_name
        (sim_suffix (Decision.swap_positions base_decision i (i + 1)))
  done;
  (* Per-conditional lowering moves. *)
  Array.iteri
    (fun pos (lb : Linear.lblock) ->
      let b = lb.Linear.src in
      let try_force ~rule leg message_of =
        let gain = saving (Ba_delta.Move.Force (b, leg)) in
        if gain > eps then begin
          let suffix = sim_suffix (Decision.with_neither base_decision b leg) in
          info pos ~rule "%s" (message_of gain suffix)
        end
      in
      match lb.Linear.term with
      | Linear.Lcond { taken_on; inserted_jump = Some _; _ } ->
        let flipped =
          if taken_on then Decision.Jump_on_true else Decision.Jump_on_false
        in
        try_force ~rule:"audit/jump-leg-flip" (Some flipped) (fun gain suffix ->
            Printf.sprintf
              "routing the %s leg of b%d through its inserted jump instead \
               would save %.1f expected %s cycles%s"
              (if taken_on then "true" else "false")
              b gain arch_name suffix);
        try_force ~rule:"audit/jump-elision" None (fun gain suffix ->
            Printf.sprintf
              "eliding the inserted jump of b%d (aligning one edge) would save \
               %.1f expected %s cycles%s"
              b gain arch_name suffix)
      | Linear.Lcond { inserted_jump = None; _ } ->
        List.iter
          (fun leg ->
            try_force ~rule:"audit/neither-edge" (Some leg) (fun gain suffix ->
                Printf.sprintf
                  "forcing the neither-edge lowering of b%d (jump on the %s \
                   leg) would save %.1f expected %s cycles%s"
                  b (Decision.leg_name leg) gain arch_name suffix))
          [ Decision.Jump_on_true; Decision.Jump_on_false ]
      | _ -> ())
    linear.Linear.blocks;
  Diagnostic.sort !diags
