open Ba_layout
open Ba_core

let recompute ~arch ?(table = Cost_model.default_table) ~visits ~cond_counts
    (linear : Linear.t) (w : Bisim.witness) =
  let uncond_c = Cost_model.uncond_cost arch table in
  Array.mapi
    (fun pos real ->
      let b = linear.Linear.blocks.(pos).Linear.src in
      let v = float_of_int (visits b) in
      match real with
      | Bisim.W_none -> 0.0
      | Bisim.W_jump -> v *. uncond_c
      | Bisim.W_cond { taken_leg; taken_backward; jump } ->
        let n_true, n_false = cond_counts b in
        let w_taken, w_other =
          if taken_leg then (float_of_int n_true, float_of_int n_false)
          else (float_of_int n_false, float_of_int n_true)
        in
        if jump then
          Cost_model.cond_neither_cost arch table ~w_jump:w_other ~w_taken
            ~taken_backward
        else Cost_model.cond_cost arch table ~w_taken ~w_fall:w_other ~taken_backward
      | Bisim.W_switch -> v *. Cost_model.indirect_cost arch table
      | Bisim.W_call { cont_jump } ->
        (v *. Cost_model.call_cost arch table)
        +. (if cont_jump then v *. uncond_c else 0.0)
      | Bisim.W_vcall { cont_jump } ->
        (v *. Cost_model.indirect_cost arch table)
        +. (if cont_jump then v *. uncond_c else 0.0)
      | Bisim.W_ret -> v *. Cost_model.return_cost table
      | Bisim.W_halt -> v *. table.Cost_model.instruction)
    w.Bisim.reals

let certify ?(tolerance = 1e-9) ~arch ?table ~visits ~cond_counts ~proc_id
    (linear : Linear.t) (w : Bisim.witness) =
  let mine = recompute ~arch ?table ~visits ~cond_counts linear w in
  let theirs = Layout_cost.per_block ~arch ?table ~visits ~cond_counts linear in
  let proc_name = linear.Linear.proc.Ba_ir.Proc.name in
  let diags = ref [] in
  Array.iteri
    (fun pos c ->
      let e = theirs.(pos) in
      let bound = Float.max 1e-6 (tolerance *. Float.max (Float.abs c) (Float.abs e)) in
      if Float.abs (c -. e) > bound then
        diags :=
          Ba_analysis.Diagnostic.make Ba_analysis.Diagnostic.Error
            ~rule:"cert/cost-mismatch"
            ~loc:
              (Ba_analysis.Diagnostic.Layout_pos { proc = proc_id; proc_name; pos })
            "%s: recomputed %.6f cycles for b%d, the evaluator says %.6f"
            (Cost_model.arch_name arch) c
            linear.Linear.blocks.(pos).Linear.src e
          :: !diags)
    mine;
  if !diags = [] then Ok (Array.fold_left ( +. ) 0.0 mine)
  else Error (Ba_analysis.Diagnostic.sort !diags)
