(** Static cost certification.

    Recomputes a lowered procedure's expected branch cost from first
    principles — the profile counts and {!Ba_core.Cost_model} applied to
    the bisimulation witness, i.e. to {e how each CFG edge was realised} —
    and cross-checks the result, position by position, against the
    evaluator the experiments trust ({!Ba_core.Layout_cost}).  The two
    computations share no traversal code: the evaluator walks lowered
    terminators, the certifier prices witness realisations; agreement
    certifies both the evaluator and the layout's claimed cost.

    Rule ids: [cert/cost-mismatch] (error) when a position's recomputed
    cycles diverge from the evaluator beyond floating-point tolerance. *)

val recompute :
  arch:Ba_core.Cost_model.arch ->
  ?table:Ba_core.Cost_model.table ->
  visits:(Ba_ir.Term.block_id -> int) ->
  cond_counts:(Ba_ir.Term.block_id -> int * int) ->
  Ba_layout.Linear.t ->
  Bisim.witness ->
  float array
(** Expected branch cycles per layout position, computed from the witness
    and the profile alone. *)

val certify :
  ?tolerance:float ->
  arch:Ba_core.Cost_model.arch ->
  ?table:Ba_core.Cost_model.table ->
  visits:(Ba_ir.Term.block_id -> int) ->
  cond_counts:(Ba_ir.Term.block_id -> int * int) ->
  proc_id:Ba_ir.Term.proc_id ->
  Ba_layout.Linear.t ->
  Bisim.witness ->
  (float, Ba_analysis.Diagnostic.t list) result
(** [Ok total] when every position agrees within [tolerance] (relative,
    default 1e-9, with a 1e-6 absolute floor); [Error] localises each
    divergent site. *)
