(** Static transfer semantics of linear code.

    The translation validator needs to know, for a lowered block, where
    control goes under each semantic outcome — without running the
    interpreter and without consulting the {!Ba_layout.Decision} or
    {!Ba_layout.Lower} (those are the artefacts under validation).  This
    module reads a {!Ba_layout.Linear.t} block's lowered terminator and
    enumerates its outcome-labelled transitions: the fall-through, the
    taken leg of a (possibly sense-inverted) conditional, the inserted
    unconditional jump of the "align neither edge" lowering, switch cases,
    and call continuations. *)

type label =
  | On_next  (** the unique continuation of a jump / call / vcall block *)
  | On_cond of bool  (** a conditional's semantic outcome *)
  | On_case of int  (** a switch's case index *)

type path =
  | Adjacent  (** control reaches the target by address adjacency alone *)
  | Hops of int list
      (** branch instruction addresses executed on the way, in order: one
          for a taken branch or an unconditional jump, two for the
          fall-then-jump chain of a neither-edge conditional *)

type transition = { label : label; dest : int; path : path }
(** One outcome-labelled transfer to the layout position [dest]. *)

type error =
  | Off_end  (** a fall-through past the last layout block *)
  | Bad_target of { what : string; target : int }
      (** a branch names a layout position outside the procedure *)

val transitions : Ba_layout.Linear.t -> int -> (transition list, error) result
(** The transitions of the block at a layout position.  [Lret] and [Lhalt]
    have none.  The result is in a fixed order (conditionals: taken leg
    first), so callers may compare lists structurally after sorting by
    label. *)

val error_message : error -> string
