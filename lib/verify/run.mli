(** Driving verification over one workload / algorithm pair.

    [verify_pipeline] escalates {!Ba_analysis.Run.check_pipeline} from
    linting to proving: it runs the same five lint stages over the same
    pipeline products (sharing the profile and the alignment run rather
    than recomputing them), then — decisions permitting — lowers, and on
    the lowered image runs the three verification passes: the
    translation validator ({!Bisim}) per procedure, the cost certifier
    ({!Cost_cert}) per architecture, and the optimality auditor
    ({!Audit}).  Certification and audit run only when every procedure
    bisimulates — there is nothing meaningful to price otherwise. *)

type t = {
  lint : Ba_analysis.Run.report;  (** the five Ba_analysis stages *)
  bisim : Ba_analysis.Diagnostic.t list;
      (** translation-validation findings, all procedures *)
  certificates : Certificate.t list;
      (** one per certified architecture, in [cert_arches] order *)
  cert_diags : Ba_analysis.Diagnostic.t list;
      (** cost-certification cross-check failures *)
  audit : Ba_analysis.Diagnostic.t list;  (** improvable-layout findings *)
  verified : bool;
      (** every procedure bisimulates and every certificate cross-checked *)
}

val diagnostics : t -> Ba_analysis.Diagnostic.t list
(** Lint, bisimulation, certification and audit findings, sorted. *)

val error_count : t -> int

val verify_image :
  ?pool:Ba_par.Pool.t ->
  ?cert_arches:Ba_core.Cost_model.arch list ->
  ?audit_arch:Ba_core.Cost_model.arch ->
  ?audit:bool ->
  ?trace:Ba_trace.Trace.t ->
  workload:string ->
  algo:string ->
  profile:Ba_cfg.Profile.t ->
  Ba_layout.Image.t ->
  Ba_analysis.Diagnostic.t list
  * Certificate.t list
  * Ba_analysis.Diagnostic.t list
  * Ba_analysis.Diagnostic.t list
(** The verification passes alone — [(bisim, certificates, cert_diags,
    audit)] — over an already-built image, with the lint stages assumed
    done elsewhere.  [cert_arches] defaults to every architecture,
    [audit_arch] to BT/FNT.  [pool] certifies the architectures in
    parallel; certificates keep [cert_arches] order (and therefore their
    digests) either way.  [trace] (a semantic trace recorded for this
    profile's run) upgrades audit findings with simulator-exact cycle
    figures via {!Ba_delta.Eval}. *)

val verify_pipeline :
  ?pool:Ba_par.Pool.t ->
  ?arch:Ba_core.Cost_model.arch ->
  ?cert_arches:Ba_core.Cost_model.arch list ->
  ?max_steps:int ->
  ?profile:Ba_cfg.Profile.t ->
  ?trace:Ba_trace.Trace.t ->
  ?audit:bool ->
  ?interproc:bool ->
  algo:Ba_core.Align.algo ->
  Ba_ir.Program.t ->
  t
(** Full run: lint stages 1-5 as {!Ba_analysis.Run.check_pipeline} would,
    then verify.  [arch] (default BT/FNT) selects the cost model the
    alignment and the audit run under; [cert_arches] (default all five)
    the certified architectures; [profile] replaces the profiling run as
    in the lint pipeline.  [interproc] (default false) builds the image
    with {!Ba_layout.Image.build_interproc} instead of
    {!Ba_layout.Image.build} — same decisions, stitched and hot/cold-split
    addresses — so the bisimulation, the cost certificates and the audit
    prove the cross-procedure layout.  Verification is skipped (with
    [verified = false]) when the IR or the decisions have lint errors —
    there is no lowered code to validate. *)
